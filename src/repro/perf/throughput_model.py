"""Analytic throughput and execution-time model (Figures 5 and 6).

The model converts per-component multiply-add counts into per-frame times
using two calibrated effective compute rates — one for the base DNN (the
paper runs it under Intel-optimized Caffe/MKL-DNN) and one for the
microclassifiers and discrete classifiers (run under stock TensorFlow) —
plus fixed per-frame overheads for decode/disk and per-classifier dispatch
and data-movement overheads.

Calibration targets the paper's testbed (quad-core i7-6700K, CPU only):

* one full-resolution MobileNet pass takes ~0.3 s (Figure 6's base-DNN bar),
* a single discrete classifier filters at roughly 8-10 fps,
* FilterForward with one MC runs at 0.83-0.90x the speed of one MobileNet.

The *shape* of the resulting curves — break-even at 3-4 concurrent
classifiers, several-fold advantage at 50, MobileNets running out of memory
past 30 — follows from the cost ratios and is robust to the calibration
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.discrete_classifier import DiscreteClassifierConfig
from repro.perf.cost_model import CostModel
from repro.perf.memory_model import MemoryModel

__all__ = ["ThroughputModelConfig", "ExecutionBreakdown", "ThroughputModel"]


@dataclass(frozen=True)
class ThroughputModelConfig:
    """Calibration constants of the throughput model."""

    base_dnn_ops_per_second: float = 7.5e10
    classifier_ops_per_second: float = 3.0e10
    fixed_overhead_seconds: float = 0.040
    filterforward_overhead_seconds: float = 0.030
    per_classifier_overhead_seconds: float = 0.004

    def __post_init__(self) -> None:
        if self.base_dnn_ops_per_second <= 0 or self.classifier_ops_per_second <= 0:
            raise ValueError("compute rates must be positive")
        if min(
            self.fixed_overhead_seconds,
            self.filterforward_overhead_seconds,
            self.per_classifier_overhead_seconds,
        ) < 0:
            raise ValueError("overheads must be non-negative")


@dataclass(frozen=True)
class ExecutionBreakdown:
    """Per-frame execution time split into base-DNN and classifier components."""

    num_classifiers: int
    base_dnn_seconds: float
    classifiers_seconds: float
    overhead_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total per-frame time."""
        return self.base_dnn_seconds + self.classifiers_seconds + self.overhead_seconds

    @property
    def fps(self) -> float:
        """Frames per second implied by the total time."""
        return 1.0 / self.total_seconds if self.total_seconds > 0 else float("inf")


@dataclass
class ThroughputModel:
    """Frame-rate model for FilterForward and its baselines."""

    cost_model: CostModel = field(default_factory=CostModel)
    config: ThroughputModelConfig = field(default_factory=ThroughputModelConfig)
    memory_model: MemoryModel = field(default_factory=MemoryModel)

    # -- FilterForward -------------------------------------------------------
    def filterforward_breakdown(
        self, num_classifiers: int, architecture: str = "localized"
    ) -> ExecutionBreakdown:
        """Per-frame time breakdown for FilterForward with ``num_classifiers`` MCs.

        This is the quantity Figure 6 plots: the (constant) base-DNN time
        plus the classifier time growing with the number of MCs.
        """
        if num_classifiers < 1:
            raise ValueError("num_classifiers must be positive")
        cfg = self.config
        base_seconds = self.cost_model.base_dnn_cost() / cfg.base_dnn_ops_per_second
        mc_seconds = self.cost_model.mc_cost(architecture) / cfg.classifier_ops_per_second
        classifiers_seconds = num_classifiers * (
            mc_seconds + cfg.per_classifier_overhead_seconds
        )
        overhead = cfg.fixed_overhead_seconds + cfg.filterforward_overhead_seconds
        return ExecutionBreakdown(
            num_classifiers=int(num_classifiers),
            base_dnn_seconds=float(base_seconds),
            classifiers_seconds=float(classifiers_seconds),
            overhead_seconds=float(overhead),
        )

    def filterforward_fps(self, num_classifiers: int, architecture: str = "localized") -> float:
        """FilterForward throughput in frames per second."""
        return self.filterforward_breakdown(num_classifiers, architecture).fps

    # -- Discrete classifiers -------------------------------------------------
    def discrete_classifier_fps(
        self, num_classifiers: int, dc_config: DiscreteClassifierConfig | None = None
    ) -> float:
        """Throughput of running ``num_classifiers`` NoScope-style DCs."""
        if num_classifiers < 1:
            raise ValueError("num_classifiers must be positive")
        cfg = self.config
        dc_config = dc_config or DiscreteClassifierConfig(
            name="dc_representative",
            kernels=(32, 64, 64),
            strides=(2, 2, 1),
            pooling_layers=1,
            separable=False,
        )
        dc_seconds = self.cost_model.dc_cost(dc_config) / cfg.classifier_ops_per_second
        total = cfg.fixed_overhead_seconds + num_classifiers * (
            dc_seconds + cfg.per_classifier_overhead_seconds
        )
        return 1.0 / total

    # -- Multiple full MobileNets ----------------------------------------------
    def multiple_mobilenets_fps(self, num_classifiers: int) -> float:
        """Throughput of running one full MobileNet per application.

        Returns NaN when the instances no longer fit in the edge node's
        memory (the paper observes out-of-memory beyond 30 classifiers).
        """
        if num_classifiers < 1:
            raise ValueError("num_classifiers must be positive")
        if not self.memory_model.mobilenets_fit(num_classifiers):
            return float("nan")
        cfg = self.config
        per_instance = self.cost_model.full_dnn_cost() / cfg.base_dnn_ops_per_second
        total = cfg.fixed_overhead_seconds + num_classifiers * (
            per_instance + cfg.per_classifier_overhead_seconds
        )
        return 1.0 / total

    # -- Derived quantities ------------------------------------------------------
    def break_even_classifiers(
        self, architecture: str = "localized", dc_config: DiscreteClassifierConfig | None = None
    ) -> int:
        """Smallest classifier count at which FilterForward out-runs the DCs."""
        for n in range(1, 1001):
            if self.filterforward_fps(n, architecture) > self.discrete_classifier_fps(n, dc_config):
                return n
        return -1

    def speedup_versus_dcs(
        self,
        num_classifiers: int,
        architecture: str = "localized",
        dc_config: DiscreteClassifierConfig | None = None,
    ) -> float:
        """FilterForward throughput divided by DC throughput at ``num_classifiers``."""
        return self.filterforward_fps(num_classifiers, architecture) / self.discrete_classifier_fps(
            num_classifiers, dc_config
        )

    def sweep(
        self,
        classifier_counts: list[int],
        architectures: tuple[str, ...] = ("full_frame", "windowed", "localized"),
        dc_config: DiscreteClassifierConfig | None = None,
    ) -> dict[str, np.ndarray]:
        """Throughput series for Figure 5: one per MC architecture, DCs, MobileNets."""
        counts = np.asarray(classifier_counts, dtype=int)
        series: dict[str, np.ndarray] = {"num_classifiers": counts}
        for arch in architectures:
            series[f"filterforward_{arch}"] = np.array(
                [self.filterforward_fps(int(n), arch) for n in counts]
            )
        series["discrete_classifiers"] = np.array(
            [self.discrete_classifier_fps(int(n), dc_config) for n in counts]
        )
        series["multiple_mobilenets"] = np.array(
            [self.multiple_mobilenets_fps(int(n)) for n in counts]
        )
        return series
