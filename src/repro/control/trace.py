"""Replayable control traces: a stable JSONL schema for run-for-run diffs.

The control plane's determinism contract (same seed + config => identical
decisions) was only checkable *inside* one process, by running twice and
comparing in memory.  This module persists everything that contract covers
to disk in a stable, line-oriented schema, so separate processes — CI jobs,
golden-file regression tests, two builds of the repository — can diff runs:

* every applied control action with its actuation time (the
  ``control_log`` / :attr:`~repro.control.loop.ControlLoop.decision_log`
  entries, which embed ``t=<seconds>``),
* the final merged telemetry snapshot (every counter, gauge watermark, and
  histogram summary), and
* the run's headline frame/uplink/control accounting.

Schema (one JSON object per line):

1. a ``header`` record carrying the schema id and record counts;
2. one ``action`` record per applied control action, in applied order;
3. one ``decision`` record per controller decision context (v2) — the
   provenance layer: inputs read, candidates ranked with scores, gating
   thresholds, and the ``action_seqs`` linking it to the ``action``
   records it produced (an empty list is an explicit no-op with reason);
4. one ``telemetry`` record per metric, in sorted name order;
5. one ``summary`` record with the report's aggregate counters.

:func:`explain_action` walks a loaded trace from an action's sequence
number back to the decision record — inputs and candidate ranking — that
produced it.

Any nondeterminism — a different decision, a shifted actuation time, a
telemetry counter off by one — shows up as a diff on a specific line.
``tests/control/test_golden_trace.py`` pins one small scenario's trace as a
golden file; mutating any policy constant fails tier-1.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

__all__ = [
    "TRACE_SCHEMA",
    "control_trace_records",
    "trace_to_jsonl",
    "write_control_trace",
    "load_trace",
    "diff_traces",
    "explain_action",
]

TRACE_SCHEMA = "repro.control.trace/v2"

# Traces written before decision provenance existed still load; they simply
# carry zero ``decision`` records.
_ACCEPTED_SCHEMAS = ("repro.control.trace/v1", TRACE_SCHEMA)

# Aggregate report fields pinned into the summary record.  Plain counters
# and bit totals only: every value is either an int or a float that JSON
# round-trips exactly (shortest-repr), so golden diffs are bit-exact.
_SUMMARY_FIELDS = (
    "frames_generated",
    "frames_scored",
    "frames_dropped",
    "frames_rejected",
    "events_detected",
    "control_ticks",
    "migrations_performed",
    "shedding_interventions",
    "uplink_rebalances",
    "threshold_drifts",
    "total_uplink_bits",
    "reclaimed_uplink_bits",
)


def control_trace_records(report) -> list[dict]:
    """Flatten a controlled run's report into schema records.

    ``report`` is duck-typed: a
    :class:`~repro.fleet.sharding.ShardedFleetReport` (or anything exposing
    ``control_log``, ``telemetry``, and the summary counters above).
    Missing summary fields are recorded as ``None`` rather than omitted, so
    a field disappearing from the report also diffs.
    """
    actions = list(report.control_log)
    decisions = list(getattr(report, "decision_records", []) or [])
    telemetry = dict(report.telemetry)
    records: list[dict] = [
        {
            "type": "header",
            "schema": TRACE_SCHEMA,
            "actions": len(actions),
            "decisions": len(decisions),
            "telemetry": len(telemetry),
        }
    ]
    for seq, entry in enumerate(actions):
        records.append({"type": "action", "seq": seq, "entry": entry})
    for decision in decisions:
        records.append({"type": "decision", **decision})
    for name in sorted(telemetry):
        records.append({"type": "telemetry", "name": name, "value": telemetry[name]})
    summary = {"type": "summary"}
    for field in _SUMMARY_FIELDS:
        summary[field] = getattr(report, field, None)
    records.append(summary)
    return records


def trace_to_jsonl(records: Sequence[dict]) -> str:
    """Serialize trace records to canonical JSONL (sorted keys, ``\\n`` ends)."""
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


def write_control_trace(path: str | Path, report) -> list[dict]:
    """Serialize ``report`` to ``path`` as JSONL; returns the records."""
    records = control_trace_records(report)
    Path(path).write_text(trace_to_jsonl(records), encoding="utf-8")
    return records


def load_trace(path: str | Path) -> list[dict]:
    """Load a JSONL trace written by :func:`write_control_trace`."""
    records = []
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), 1
    ):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:  # pragma: no cover - corrupt file
            raise ValueError(f"{path}:{lineno}: invalid trace line: {exc}") from exc
    if not records or records[0].get("type") != "header":
        raise ValueError(f"{path}: not a control trace (missing header record)")
    schema = records[0].get("schema")
    if schema not in _ACCEPTED_SCHEMAS:
        raise ValueError(
            f"{path}: schema {schema!r} not one of {list(_ACCEPTED_SCHEMAS)}"
        )
    return records


def explain_action(records: Sequence[dict], action_seq: int) -> dict:
    """The decision record that produced action ``action_seq``.

    Walks a loaded trace (or fresh :func:`control_trace_records` output) to
    the ``decision`` record whose ``action_seqs`` contains the action's
    sequence number — the provenance side of the determinism contract: any
    line of the golden trace replays back to the inputs that caused it.
    Raises :class:`KeyError` when the action exists but no decision claims
    it (a v1 trace), and :class:`IndexError` when the action itself is
    missing.
    """
    if not any(
        r.get("type") == "action" and r.get("seq") == action_seq for r in records
    ):
        raise IndexError(f"No action with seq={action_seq} in this trace")
    for record in records:
        if record.get("type") != "decision":
            continue
        if action_seq in record.get("action_seqs", []):
            return record
    raise KeyError(
        f"No decision record claims action seq={action_seq} (pre-provenance trace?)"
    )


def _describe(record: dict) -> str:
    kind = record.get("type", "?")
    if kind == "action":
        return f"action seq={record.get('seq')}: {record.get('entry')!r}"
    if kind == "decision":
        return (
            f"decision seq={record.get('seq')} {record.get('controller')}/"
            f"{record.get('kind')} @t={record.get('t')}: "
            f"actions={record.get('action_seqs')!r}"
        )
    if kind == "telemetry":
        return f"telemetry {record.get('name')!r} = {record.get('value')!r}"
    return f"{kind} {json.dumps(record, sort_keys=True)}"


def diff_traces(expected: Sequence[dict], actual: Sequence[dict]) -> list[str]:
    """Human-readable differences between two traces (empty = identical).

    Records are compared positionally and exactly — the schema fixes the
    record order, so a positional diff names the first drifting decision,
    telemetry value, or summary counter instead of a noisy set difference.
    """
    problems: list[str] = []
    if len(expected) != len(actual):
        problems.append(f"record count differs: expected {len(expected)}, got {len(actual)}")
    for index, (want, got) in enumerate(zip(expected, actual)):
        if want == got:
            continue
        problems.append(
            f"record {index} differs:\n  expected {_describe(want)}\n  actual   {_describe(got)}"
        )
        if len(problems) >= 20:
            problems.append("... (further diffs suppressed)")
            break
    return problems
