"""Hierarchical control plane: node-local loops plus a cluster coordinator.

The flat :class:`~repro.control.loop.ControlLoop` shows every controller
every node's full runtime each tick and merges every node's full telemetry
registry into the cluster report — O(cameras x metrics) of cluster-side
work per interval.  That tops out around tens of cameras; the paper's
premise (edge nodes do the heavy lifting locally, the datacenter sees only
what must travel) applies to the *control plane* too.

This module splits control into two levels:

* :class:`NodeControlPlane` — one per edge node.  Local policies (adaptive
  shedding, threshold drift, value shedding — anything emitting node-scope
  actions) observe only that node's runtime and actuate it directly.  After
  acting, the plane distills the node into one :class:`NodeAggregate`: a
  **fixed-size** summary — counts, rates, an offered-utilization estimate,
  and a mergeable :class:`QuantileSketch` of the interval's queue waits —
  whose serialized size is independent of how many cameras the node hosts.
* :class:`ClusterCoordinator` — consumes *only* the aggregates.  It
  re-weights the shared uplink toward observed demand (the
  :class:`~repro.control.uplink.UplinkShareController` math, re-read from
  aggregate matched-frame deltas) and gates cross-node migration on
  aggregate offered utilization.  Victim selection stays on the source
  node: the coordinator names a ``(source, destination)`` pair and the
  source's plane nominates the camera, so per-camera detail never crosses
  the node boundary.

:class:`HierarchicalControlPlane` wires the two levels to a sharded
cluster runtime: per-interval cluster coordination exchanges exactly one
aggregate per node upstream and one uplink guarantee per node downstream —
O(nodes), asserted in ``benchmarks/bench_hierarchy.py`` via
:attr:`HierarchicalControlPlane.payload_bytes`.  Decision provenance is
stamped at both levels (``level="node"`` / ``level="cluster"``) into one
globally ordered record stream, and the metrics timeline is scraped at
both levels (per-node sources plus a fixed-size ``"cluster"`` rollup).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.control.loop import ClusterActuator, NodeActuator
from repro.control.migration import MigrationConfig
from repro.control.policies import (
    ClusterView,
    ControlAction,
    Controller,
    MigrateCamera,
    NodeView,
    SetCameraQuota,
    SetCameraThreshold,
    SetUplinkWeights,
)
from repro.control.provenance import CandidateScore, DecisionRecord, ProvenanceBuffer
from repro.control.shedding import AdaptiveSheddingController
from repro.control.uplink import UplinkShareConfig
from repro.control.value import ThresholdDriftController
from repro.fleet.runtime import FleetRuntime
from repro.fleet.telemetry import TelemetryRegistry
from repro.obs.timeline import MetricsTimeline

__all__ = [
    "QuantileSketch",
    "NodeAggregate",
    "NodeControlPlane",
    "ClusterCoordinator",
    "HierarchicalControlPlane",
    "default_local_controllers",
]

# Counter families every NodeAggregate carries.  Fixed list = fixed payload.
_AGGREGATE_COUNTERS = (
    ("frames_generated", "frames.generated"),
    ("frames_scored", "frames.scored"),
    ("frames_rejected", "frames.rejected"),
    ("frames_matched", "frames.matched"),
    ("events_closed", "events.closed"),
    ("estimated_upload_bits", "uplink.estimated_bits"),
    # Delivery-plane summary: fixed scalar counters, never per-event lines,
    # so the per-tick payload stays O(1) per node with the plane attached.
    ("events_published", "events.published"),
    ("events_dropped", "events.dropped"),
)


@dataclass(frozen=True)
class QuantileSketch:
    """Fixed-size mergeable quantile summary over ``(value, weight)`` centroids.

    Values compress into at most ``max_centroids`` weight-balanced centroids
    (sorted by value), so the sketch's size — and its serialized payload —
    is bounded no matter how many observations fed it.  Merging concatenates
    and re-compresses; quantiles are weighted nearest-rank over centroids.
    Everything is deterministic: same inputs, same centroids.
    """

    centroids: tuple[tuple[float, float], ...] = ()
    max_centroids: int = 32

    @staticmethod
    def _compress(
        centroids: Sequence[tuple[float, float]], max_centroids: int
    ) -> tuple[tuple[float, float], ...]:
        if len(centroids) <= max_centroids:
            return tuple(centroids)
        total = sum(w for _, w in centroids)
        per_bucket = total / max_centroids
        out: list[tuple[float, float]] = []
        acc_value = 0.0
        acc_weight = 0.0
        for value, weight in centroids:
            acc_value += value * weight
            acc_weight += weight
            if acc_weight >= per_bucket and len(out) < max_centroids - 1:
                out.append((acc_value / acc_weight, acc_weight))
                acc_value = 0.0
                acc_weight = 0.0
        if acc_weight > 0.0:
            out.append((acc_value / acc_weight, acc_weight))
        return tuple(out)

    @classmethod
    def from_values(
        cls, values: Sequence[float], max_centroids: int = 32
    ) -> "QuantileSketch":
        """Build a sketch from raw observations."""
        if max_centroids < 1:
            raise ValueError("max_centroids must be at least 1")
        singles = tuple((float(v), 1.0) for v in sorted(float(v) for v in values))
        return cls(cls._compress(singles, max_centroids), max_centroids)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """The sketch of the combined distributions (size stays bounded)."""
        combined = sorted(self.centroids + other.centroids)
        return QuantileSketch(
            self._compress(combined, self.max_centroids), self.max_centroids
        )

    @property
    def count(self) -> float:
        """Total observation weight behind this sketch."""
        return sum(w for _, w in self.centroids)

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (weighted nearest-rank; q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self.centroids:
            return 0.0
        total = self.count
        rank = max(1.0, math.ceil(q / 100.0 * total))
        cumulative = 0.0
        for value, weight in self.centroids:
            cumulative += weight
            if cumulative >= rank:
                return value
        return self.centroids[-1][0]

    def to_payload(self) -> list[list[float]]:
        """JSON-ready ``[[value, weight], ...]`` — at most ``max_centroids`` pairs."""
        return [[round(v, 9), round(w, 6)] for v, w in self.centroids]


@dataclass(frozen=True)
class NodeAggregate:
    """One node's fixed-size per-interval summary — all the cluster ever sees.

    Counts and rates are cumulative counter values; ``offered_utilization``
    and the queue-wait sketch describe the last control interval.  The
    serialized payload (:meth:`to_payload`) is bounded by a constant: the
    sketch holds at most ``max_centroids`` centroids and ``resolutions`` is
    bounded by the fleet's resolution palette, never by camera count.
    """

    node_id: str
    now: float
    num_cameras: int
    num_workers: int
    frames_generated: float
    frames_scored: float
    frames_rejected: float
    frames_dropped: float
    frames_matched: float
    events_closed: float
    estimated_upload_bits: float
    offered_utilization: float
    window_wait_count: int
    window_wait_sketch: QuantileSketch
    resolutions: tuple[tuple[int, int], ...]
    events_published: float = 0.0
    events_dropped: float = 0.0

    @property
    def window_wait_p99(self) -> float:
        """p99 queue wait over the summarized interval (from the sketch)."""
        return self.window_wait_sketch.percentile(99)

    def to_payload(self) -> dict:
        """The JSON-ready upstream message (what crosses the node boundary)."""
        return {
            "node_id": self.node_id,
            "t": round(self.now, 9),
            "cameras": self.num_cameras,
            "workers": self.num_workers,
            "generated": self.frames_generated,
            "scored": self.frames_scored,
            "rejected": self.frames_rejected,
            "dropped": self.frames_dropped,
            "matched": self.frames_matched,
            "events": self.events_closed,
            "events_published": self.events_published,
            "events_dropped": self.events_dropped,
            "upload_bits": self.estimated_upload_bits,
            "offered_utilization": round(self.offered_utilization, 9),
            "wait_count": self.window_wait_count,
            "wait_sketch": self.window_wait_sketch.to_payload(),
            "resolutions": [list(r) for r in self.resolutions],
        }

    def payload_bytes(self) -> int:
        """Serialized size of the upstream message in bytes."""
        return len(
            json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":")).encode()
        )


def default_local_controllers(node_id: str) -> list[Controller]:
    """The local policy set a node runs when none is injected.

    Adaptive shedding (windowed queue-wait p99 against that node's own
    telemetry) plus threshold drift (a no-op on nodes without the accuracy
    plane).  Uplink re-weighting and migration are cluster-scope and live in
    the coordinator.
    """
    return [AdaptiveSheddingController(), ThresholdDriftController()]


class NodeControlPlane:
    """One node's local control loop plus its aggregate distiller.

    Ticks run the node's controllers against a single-node
    :class:`~repro.control.policies.ClusterView` (the only cluster-scope
    input is the node's own uplink guarantee, handed down by the
    coordinator — an O(1) downstream message) and apply their actions
    through a :class:`~repro.control.loop.NodeActuator`.  The tick then
    distills the node into a :class:`NodeAggregate` for the coordinator.
    """

    def __init__(
        self,
        node_id: str,
        runtime: FleetRuntime,
        controllers: Sequence[Controller] | None = None,
        interval_seconds: float = 0.25,
        decision_log: list[str] | None = None,
        decision_records: list[dict] | None = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.node_id = node_id
        self.runtime = runtime
        self.controllers = (
            list(controllers)
            if controllers is not None
            else default_local_controllers(node_id)
        )
        names = [c.name for c in self.controllers]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"Duplicate controller names: {sorted(duplicates)}")
        self.interval_seconds = float(interval_seconds)
        self.actuator = NodeActuator(runtime, node_id)
        self.telemetry = TelemetryRegistry()
        # Shared with the hierarchy when driven by one (global ordering);
        # standalone planes keep their own.
        self.decision_log = decision_log if decision_log is not None else []
        self.decision_records = decision_records if decision_records is not None else []
        self.ticks = 0
        self._wait_index = 0
        self._last_generated: dict[str, int] = {}

    # -- the local loop --------------------------------------------------------
    def tick(
        self, now: float, horizon: float, uplink_guarantee: float | None = None
    ) -> NodeAggregate:
        """Run local policies once, then summarize the node for the cluster."""
        self.ticks += 1
        self.telemetry.counter("control.ticks").inc()
        view = ClusterView(
            now=now,
            interval=self.interval_seconds,
            tick_index=self.ticks - 1,
            nodes=(NodeView(self.node_id, self.runtime),),
            horizon=horizon,
            uplink_weights=None,
            uplink_guarantees=(
                {self.node_id: uplink_guarantee} if uplink_guarantee is not None else None
            ),
        )
        for controller in self.controllers:
            action_start = len(self.decision_log)
            actions = controller.decide(view)
            for action in actions:
                self.actuator.apply(action, now)
                self._account(controller, action, now)
            self._collect_provenance(controller, actions, action_start, now)
        return self.aggregate(now)

    def aggregate(self, now: float) -> NodeAggregate:
        """Distill the node's current state into its fixed-size summary."""
        counters = self.runtime.telemetry.counters()
        fields = {name: counters.get(metric, 0.0) for name, metric in _AGGREGATE_COUNTERS}
        dropped = counters.get("frames.dropped_oldest", 0.0) + counters.get(
            "frames.dropped_newest", 0.0
        )
        hist = self.runtime.telemetry.histogram("latency.queue_wait_seconds")
        window = hist.values[max(0, self._wait_index - hist.discarded) :]
        self._wait_index = hist.count
        live = self.runtime.camera_live_stats()
        return NodeAggregate(
            node_id=self.node_id,
            now=now,
            num_cameras=len(live),
            num_workers=self.runtime.workers.num_workers,
            frames_dropped=dropped,
            offered_utilization=self._offered_utilization(live),
            window_wait_count=len(window),
            window_wait_sketch=QuantileSketch.from_values(window),
            resolutions=tuple(sorted({stats.resolution for stats in live.values()})),
            **fields,
        )

    def _offered_utilization(self, live: Mapping[str, object]) -> float:
        """Arriving work over the last interval per worker-second (node-local).

        The same windowed estimate :class:`~repro.control.migration.MigrationController`
        computes from cluster views, produced here so only the scalar — not
        per-camera counters — travels to the coordinator.
        """
        work_seconds = 0.0
        for camera_id, stats in sorted(live.items()):
            previous = self._last_generated.get(camera_id, 0)
            delta = max(0, stats.generated - previous)
            self._last_generated[camera_id] = stats.generated
            # Attach-time blackout losses land in `generated` as one lump;
            # cap at the camera's physical offer so phantom frames cannot
            # mark a just-relieved node as hot.
            delta = min(delta, int(stats.frame_rate * self.interval_seconds) + 1)
            work_seconds += delta * stats.service_seconds
        return work_seconds / (self.runtime.workers.num_workers * self.interval_seconds)

    # -- migration victim selection (coordinator-delegated) --------------------
    def nominate_victim(
        self,
        destination: NodeAggregate,
        source_utilization: float,
        destination_utilization: float,
        remaining_seconds: float,
        config: MigrationConfig,
        camera_cooldowns: Mapping[str, int],
    ) -> tuple[MigrateCamera | None, tuple[CandidateScore, ...]]:
        """Pick this node's best camera to hand to ``destination``.

        The coordinator decided *that* a move should happen (from
        aggregates); choosing *which* camera needs per-camera stats, so it
        happens here, node-locally.  Scoring mirrors the flat
        :class:`~repro.control.migration.MigrationController`: viability
        requires the camera's utilization to fit the pair's gap and the
        saved frames to pay back the blackout; the chosen camera minimizes
        the pair-leveling residual.
        """
        gap = source_utilization - destination_utilization
        if gap <= 0:
            return None, ()
        destination_resolutions = set(destination.resolutions)
        workers = self.runtime.workers.num_workers
        best: tuple[float, str] | None = None
        best_blackout = 0.0
        scored: dict[str, tuple[float, tuple[tuple[str, float], ...], bool]] = {}
        for camera_id, stats in sorted(self.runtime.camera_live_stats().items()):
            if camera_id in camera_cooldowns:
                continue
            camera_util = stats.frame_rate * stats.service_seconds / workers
            blackout = config.cost_model.blackout_for(
                stats.resolution, destination_resolutions
            )
            lost = config.cost_model.frames_lost(stats.frame_rate, blackout)
            excess_util = max(0.0, source_utilization - 1.0)
            saved_fps = min(
                stats.frame_rate,
                excess_util * workers / max(stats.service_seconds, 1e-12),
            )
            saved = saved_fps * remaining_seconds
            residual = abs(gap - 2.0 * camera_util)
            detail = (
                ("camera_utilization", camera_util),
                ("blackout_seconds", blackout),
                ("frames_lost", lost),
                ("frames_saved", saved),
            )
            viable = 0 < camera_util <= gap and saved >= lost * config.payback_factor
            scored[camera_id] = (residual, detail, viable)
            if not viable:
                continue
            if best is None or (residual, camera_id) < best:
                best = (residual, camera_id)
                best_blackout = blackout
        candidates = tuple(
            CandidateScore(
                candidate_id=camera_id,
                score=residual,
                chosen=best is not None and camera_id == best[1],
                detail=detail,
            )
            for camera_id, (residual, detail, _viable) in sorted(scored.items())
        )
        if best is None:
            return None, candidates
        return (
            MigrateCamera(
                camera_id=best[1],
                source=self.node_id,
                destination=destination.node_id,
                blackout_seconds=best_blackout,
            ),
            candidates,
        )

    # -- accounting & provenance ----------------------------------------------
    def _account(self, controller: Controller, action: ControlAction, now: float) -> None:
        self.decision_log.append(
            f"t={now:.3f} {self.node_id}/{controller.name}: {action.describe()}"
        )
        self.telemetry.counter("control.actions.total").inc()
        self.telemetry.counter(f"control.actions.{controller.name}").inc()
        if isinstance(action, SetCameraQuota) and action.quota is not None:
            self.telemetry.counter("control.shedding.interventions").inc()
        elif isinstance(action, SetCameraThreshold):
            self.telemetry.counter("control.threshold.drifts").inc()

    def _collect_provenance(
        self,
        controller: Controller,
        actions: Sequence[ControlAction],
        action_start: int,
        now: float,
    ) -> None:
        """Stamp the controller's staged records into the shared stream."""
        drain = getattr(controller, "drain_decision_records", None)
        records = drain() if callable(drain) else []
        claimed = sum(len(record.actions) for record in records)
        if claimed != len(actions):
            records = [
                DecisionRecord(
                    controller=controller.name,
                    kind="action",
                    node_id=self.node_id,
                    actions=(action.describe(),),
                )
                for action in actions
            ]
        cursor = action_start
        for record in records:
            entry = record.to_dict()
            entry.setdefault("node_id", self.node_id)
            entry["level"] = "node"
            entry["tick"] = self.ticks - 1
            entry["t"] = now
            entry["seq"] = len(self.decision_records)
            entry["action_seqs"] = list(range(cursor, cursor + len(record.actions)))
            cursor += len(record.actions)
            self.decision_records.append(entry)
            self.telemetry.counter("control.decisions.total").inc()
            if record.is_noop:
                self.telemetry.counter("control.decisions.noop").inc()

    def counter_value(self, name: str) -> float:
        """Current value of one local control counter (0.0 when absent)."""
        return self.telemetry.counters().get(name, 0.0)


class ClusterCoordinator:
    """Cluster-scope decisions from per-node aggregates — never full registries.

    Two policies, both re-reading their flat-plane math from aggregates:

    * **uplink re-weighting** — EMA of each node's matched-frame deltas
      (:class:`~repro.control.uplink.UplinkShareConfig` semantics: floor
      every node, split the rest by demand, act only past the drift gate);
    * **migration intent** — the :class:`~repro.control.migration.MigrationConfig`
      gates (imbalance, overload, headroom, sustain, cooldown) applied to
      aggregate offered utilizations.  The coordinator names the
      ``(source, destination)`` pair; the source node picks the camera.
    """

    def __init__(
        self,
        uplink_config: UplinkShareConfig | None = None,
        migration_config: MigrationConfig | None = None,
    ) -> None:
        self.uplink_config = uplink_config or UplinkShareConfig()
        self.migration_config = migration_config or MigrationConfig()
        self._last_matched: dict[str, float] = {}
        self._demand_ema: dict[str, float] = {}
        self._sustained = 0
        self._cooldown = 0
        self.camera_cooldowns: dict[str, int] = {}
        self.migrations: list[tuple[float, str, str, str]] = []
        self._provenance = ProvenanceBuffer()

    # -- provenance ------------------------------------------------------------
    def record_decision(self, record: DecisionRecord) -> None:
        """Stage one decision record for the hierarchy to collect this tick."""
        self._provenance.append(record)

    def drain_decision_records(self) -> list[DecisionRecord]:
        """Remove and return every staged record (hierarchy-facing)."""
        return self._provenance.drain()

    # -- uplink re-weighting ---------------------------------------------------
    def decide_uplink(
        self,
        aggregates: Mapping[str, NodeAggregate],
        uplink_weights: Mapping[str, float] | None,
    ) -> SetUplinkWeights | None:
        """One weight update when aggregate demand drifts past the threshold."""
        config = self.uplink_config
        gates = {
            "smoothing": config.smoothing,
            "min_share": config.min_share,
            "rebalance_threshold": config.rebalance_threshold,
        }
        if uplink_weights is None:
            self.record_decision(
                DecisionRecord(
                    controller="cluster_uplink",
                    kind="idle",
                    gates=gates,
                    reason="statically sliced uplink, nothing to actuate",
                )
            )
            return None
        node_ids = sorted(uplink_weights)
        for node_id in node_ids:
            aggregate = aggregates.get(node_id)
            matched = aggregate.frames_matched if aggregate is not None else 0.0
            delta = max(0.0, matched - self._last_matched.get(node_id, 0.0))
            self._last_matched[node_id] = matched
            previous = self._demand_ema.get(node_id, 0.0)
            alpha = config.smoothing
            self._demand_ema[node_id] = (1 - alpha) * previous + alpha * delta
        total_demand = sum(self._demand_ema.get(n, 0.0) for n in node_ids)
        if total_demand <= 0:
            self.record_decision(
                DecisionRecord(
                    controller="cluster_uplink",
                    kind="hold",
                    inputs={"total_demand_ema": total_demand},
                    gates=gates,
                    reason="no upload demand observed yet",
                )
            )
            return None
        floor = min(config.min_share, 1.0 / len(node_ids))
        spare = 1.0 - floor * len(node_ids)
        target = {
            n: floor + spare * self._demand_ema.get(n, 0.0) / total_demand
            for n in node_ids
        }
        current_total = sum(uplink_weights[n] for n in node_ids)
        current = {n: uplink_weights[n] / current_total for n in node_ids}
        drift = max(abs(target[n] - current[n]) for n in node_ids)
        rebalance = drift > config.rebalance_threshold
        candidates = tuple(
            CandidateScore(
                candidate_id=n,
                score=target[n] - current[n],
                chosen=rebalance,
                detail=(
                    ("target_share", target[n]),
                    ("current_share", current[n]),
                    ("demand_ema", self._demand_ema.get(n, 0.0)),
                ),
            )
            for n in node_ids
        )
        if not rebalance:
            self.record_decision(
                DecisionRecord(
                    controller="cluster_uplink",
                    kind="hold",
                    inputs={"total_demand_ema": total_demand, "max_drift": drift},
                    gates=gates,
                    candidates=candidates,
                    reason="demand drift inside the rebalance threshold",
                )
            )
            return None
        action = SetUplinkWeights(
            weights=tuple((n, max(round(target[n], 6), 1e-6)) for n in node_ids)
        )
        self.record_decision(
            DecisionRecord(
                controller="cluster_uplink",
                kind="rebalance",
                inputs={"total_demand_ema": total_demand, "max_drift": drift},
                gates=gates,
                candidates=candidates,
                actions=(action.describe(),),
            )
        )
        return action

    # -- migration -------------------------------------------------------------
    def _migration_gates(self, extra: dict | None = None) -> dict:
        config = self.migration_config
        gates = {
            "imbalance_threshold": config.imbalance_threshold,
            "overload_threshold": config.overload_threshold,
            "headroom_threshold": config.headroom_threshold,
            "sustain_ticks": config.sustain_ticks,
            "cooldown_ticks": config.cooldown_ticks,
            "payback_factor": config.payback_factor,
        }
        if extra:
            gates.update(extra)
        return gates

    def _hold_migration(self, reason: str, inputs: dict, extra: dict | None = None) -> None:
        self.record_decision(
            DecisionRecord(
                controller="cluster_migration",
                kind="hold",
                inputs=inputs,
                gates=self._migration_gates(extra),
                reason=reason,
            )
        )

    def decide_migration(
        self, aggregates: Mapping[str, NodeAggregate]
    ) -> tuple[str, str] | None:
        """Name a ``(source, destination)`` pair when imbalance sustains.

        Returns the intent only; the caller asks the source node's plane to
        nominate a camera and must report the outcome via
        :meth:`note_migration` (applied) or :meth:`note_no_candidate`.
        """
        config = self.migration_config
        utilizations = {
            node_id: aggregates[node_id].offered_utilization
            for node_id in sorted(aggregates)
        }
        for camera_id in sorted(self.camera_cooldowns):
            self.camera_cooldowns[camera_id] -= 1
            if self.camera_cooldowns[camera_id] <= 0:
                del self.camera_cooldowns[camera_id]
        if self._cooldown > 0:
            self._cooldown -= 1
            self._sustained = 0
            self._hold_migration(
                "migration cooldown active",
                {"cooldown_remaining": float(self._cooldown)},
            )
            return None
        if len(utilizations) < 2:
            self._hold_migration(
                "fewer than two nodes, nowhere to move",
                {"nodes": float(len(utilizations))},
            )
            return None
        mean = sum(utilizations.values()) / len(utilizations)
        hottest = max(sorted(utilizations), key=lambda n: utilizations[n])
        coolest = min(sorted(utilizations), key=lambda n: utilizations[n])
        inputs = {
            "mean_utilization": mean,
            "hottest_utilization": utilizations[hottest],
            "coolest_utilization": utilizations[coolest],
            "sustained_ticks": float(self._sustained),
        }
        extra = {"hottest": hottest, "coolest": coolest}
        imbalanced = (
            mean > 0
            and utilizations[hottest] / mean > config.imbalance_threshold
            and utilizations[hottest] > config.overload_threshold
            and utilizations[coolest] < config.headroom_threshold
        )
        if not imbalanced:
            self._sustained = 0
            self._hold_migration("cluster inside the imbalance gates", inputs, extra)
            return None
        self._sustained += 1
        inputs["sustained_ticks"] = float(self._sustained)
        if self._sustained < config.sustain_ticks:
            self._hold_migration("imbalance observed but not yet sustained", inputs, extra)
            return None
        self._pending_inputs = inputs
        self._pending_extra = extra
        return hottest, coolest

    def note_migration(
        self,
        now: float,
        action: MigrateCamera,
        candidates: tuple[CandidateScore, ...] = (),
    ) -> None:
        """Record an applied handoff and start both cooldowns."""
        config = self.migration_config
        self._sustained = 0
        self._cooldown = config.cooldown_ticks
        self.camera_cooldowns[action.camera_id] = config.camera_cooldown_ticks
        self.migrations.append((now, action.camera_id, action.source, action.destination))
        self.record_decision(
            DecisionRecord(
                controller="cluster_migration",
                kind="migrate",
                inputs=getattr(self, "_pending_inputs", {}),
                gates=self._migration_gates(getattr(self, "_pending_extra", None)),
                candidates=candidates,
                actions=(action.describe(),),
            )
        )

    def note_no_candidate(self, candidates: tuple[CandidateScore, ...] = ()) -> None:
        """Record that the nominated source had no camera paying back its move."""
        self.record_decision(
            DecisionRecord(
                controller="cluster_migration",
                kind="hold",
                inputs=getattr(self, "_pending_inputs", {}),
                gates=self._migration_gates(getattr(self, "_pending_extra", None)),
                candidates=candidates,
                reason="no candidate camera pays back its blackout",
            )
        )


class HierarchicalControlPlane:
    """Two-level control over a sharded cluster: local loops + coordinator.

    Built to be driven by :meth:`repro.fleet.sharding.ShardedFleetRuntime.run`'s
    lockstep driver: :meth:`bind` creates one :class:`NodeControlPlane` per
    node, then each :meth:`tick` runs every local loop, ships one
    :class:`NodeAggregate` per node to the :class:`ClusterCoordinator`,
    applies cluster actions, and maintains a fixed-size cluster telemetry
    rollup (gauges derived from aggregates — never a full registry merge).
    :attr:`payload_bytes` records each tick's total coordination payload,
    the quantity the scale benchmark pins as O(nodes).
    """

    def __init__(
        self,
        controllers_factory: Callable[[str], Sequence[Controller]] | None = None,
        interval_seconds: float = 0.25,
        coordinator: ClusterCoordinator | None = None,
        telemetry: TelemetryRegistry | None = None,
        timeline: MetricsTimeline | None = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.controllers_factory = controllers_factory or default_local_controllers
        self.interval_seconds = float(interval_seconds)
        self.coordinator = coordinator or ClusterCoordinator()
        self.telemetry = telemetry or TelemetryRegistry()
        self.timeline = timeline
        self.planes: dict[str, NodeControlPlane] = {}
        self.decision_log: list[str] = []
        self.decision_records: list[dict] = []
        self.payload_bytes: list[int] = []
        self.last_aggregates: dict[str, NodeAggregate] = {}
        self.ticks = 0

    # -- wiring ----------------------------------------------------------------
    def bind(self, cluster) -> None:
        """Create one local plane per cluster node (idempotent per cluster)."""
        self.planes = {
            node_id: NodeControlPlane(
                node_id,
                runtime,
                controllers=self.controllers_factory(node_id),
                interval_seconds=self.interval_seconds,
                decision_log=self.decision_log,
                decision_records=self.decision_records,
            )
            for node_id, runtime in sorted(cluster.nodes.items())
        }

    # -- one control interval --------------------------------------------------
    def tick(self, now: float, cluster) -> list[ControlAction]:
        """Local loops, aggregate exchange, cluster decisions — one interval."""
        if not self.planes:
            self.bind(cluster)
        self.ticks += 1
        self.telemetry.counter("control.ticks").inc()
        horizon = max(
            (runtime.horizon for runtime in cluster.nodes.values()), default=0.0
        )
        guarantees = cluster.uplink_guarantees()
        # Level 1: every node runs its local loop, then sends one aggregate up.
        aggregates: dict[str, NodeAggregate] = {}
        for node_id in sorted(self.planes):
            aggregates[node_id] = self.planes[node_id].tick(
                now, horizon, guarantees.get(node_id)
            )
        self.last_aggregates = aggregates
        payload = sum(agg.payload_bytes() for agg in aggregates.values())
        self.payload_bytes.append(payload)
        # Level 2: the coordinator acts on aggregates only.
        actuator = ClusterActuator(cluster)
        applied: list[ControlAction] = []
        weights = cluster.current_uplink_weights()
        action_start = len(self.decision_log)
        uplink_action = self.coordinator.decide_uplink(aggregates, weights)
        if uplink_action is not None:
            actuator.apply(uplink_action, now)
            self._account("cluster_uplink", uplink_action, now)
            applied.append(uplink_action)
        self._collect_coordinator(
            [uplink_action] if uplink_action is not None else [], action_start, now
        )
        action_start = len(self.decision_log)
        migration_action: MigrateCamera | None = None
        intent = self.coordinator.decide_migration(aggregates)
        if intent is not None:
            source, destination = intent
            migration_action, candidates = self.planes[source].nominate_victim(
                aggregates[destination],
                aggregates[source].offered_utilization,
                aggregates[destination].offered_utilization,
                max(0.0, horizon - now),
                self.coordinator.migration_config,
                self.coordinator.camera_cooldowns,
            )
            if migration_action is not None:
                actuator.apply(migration_action, now)
                self.coordinator.note_migration(now, migration_action, candidates)
                self._account("cluster_migration", migration_action, now)
                applied.append(migration_action)
            else:
                self.coordinator.note_no_candidate(candidates)
        self._collect_coordinator(
            [migration_action] if migration_action is not None else [], action_start, now
        )
        self._update_rollup(now, aggregates, payload)
        if self.timeline is not None:
            for node_id in sorted(self.planes):
                self.timeline.scrape(
                    now, node_id, self.planes[node_id].runtime.telemetry
                )
            self.timeline.scrape(now, "cluster", self.telemetry)
        return applied

    # -- cluster rollup (O(nodes) per tick, fixed metric set) ------------------
    def _update_rollup(
        self, now: float, aggregates: Mapping[str, NodeAggregate], payload: int
    ) -> None:
        sums = {
            name: sum(getattr(agg, name) for agg in aggregates.values())
            for name, _metric in _AGGREGATE_COUNTERS
        }
        gauges = self.telemetry.gauge
        gauges("cluster.nodes").set(len(aggregates))
        gauges("cluster.cameras").set(sum(a.num_cameras for a in aggregates.values()))
        gauges("cluster.frames.generated").set(sums["frames_generated"])
        gauges("cluster.frames.scored").set(sums["frames_scored"])
        gauges("cluster.frames.rejected").set(sums["frames_rejected"])
        gauges("cluster.frames.dropped").set(
            sum(a.frames_dropped for a in aggregates.values())
        )
        gauges("cluster.frames.matched").set(sums["frames_matched"])
        gauges("cluster.events.closed").set(sums["events_closed"])
        gauges("cluster.events.published").set(sums["events_published"])
        gauges("cluster.events.dropped").set(sums["events_dropped"])
        gauges("cluster.uplink.estimated_bits").set(sums["estimated_upload_bits"])
        merged = QuantileSketch()
        for node_id in sorted(aggregates):
            merged = merged.merge(aggregates[node_id].window_wait_sketch)
        gauges("cluster.queue_wait.window_p99").set(merged.percentile(99))
        utilizations = [a.offered_utilization for a in aggregates.values()]
        gauges("cluster.offered_utilization.max").set(max(utilizations, default=0.0))
        gauges("cluster.offered_utilization.mean").set(
            sum(utilizations) / len(utilizations) if utilizations else 0.0
        )
        gauges("cluster.coordination.payload_bytes").set(payload)
        gauges("cluster.migrations.performed").set(len(self.coordinator.migrations))

    # -- accounting & provenance ----------------------------------------------
    def _account(self, controller_name: str, action: ControlAction, now: float) -> None:
        self.decision_log.append(
            f"t={now:.3f} cluster/{controller_name}: {action.describe()}"
        )
        self.telemetry.counter("control.actions.total").inc()
        self.telemetry.counter(f"control.actions.{controller_name}").inc()
        if isinstance(action, MigrateCamera):
            self.telemetry.counter("control.migration.performed").inc()
        elif isinstance(action, SetUplinkWeights):
            self.telemetry.counter("control.uplink.rebalances").inc()

    def _collect_coordinator(
        self, actions: Sequence[ControlAction], action_start: int, now: float
    ) -> None:
        records = self.coordinator.drain_decision_records()
        claimed = sum(len(record.actions) for record in records)
        if claimed != len(actions):
            records = [
                DecisionRecord(
                    controller="cluster",
                    kind="action",
                    actions=(action.describe(),),
                )
                for action in actions
            ]
        cursor = action_start
        for record in records:
            entry = record.to_dict()
            entry["level"] = "cluster"
            entry["tick"] = self.ticks - 1
            entry["t"] = now
            entry["seq"] = len(self.decision_records)
            entry["action_seqs"] = list(range(cursor, cursor + len(record.actions)))
            cursor += len(record.actions)
            self.decision_records.append(entry)
            self.telemetry.counter("control.decisions.total").inc()
            if record.is_noop:
                self.telemetry.counter("control.decisions.noop").inc()

    def counter_value(self, name: str) -> float:
        """One control counter summed across the coordinator and all planes."""
        total = self.telemetry.counters().get(name, 0.0)
        for node_id in sorted(self.planes):
            total += self.planes[node_id].counter_value(name)
        return total
