"""Controller interface, cluster observations, and typed control actions.

The control plane is a classic observe-decide-actuate loop over the fleet
telemetry: every control interval each :class:`Controller` receives a
:class:`ClusterView` (a read-only window onto every node's runtime and
telemetry) and returns a list of :class:`ControlAction`\\ s.  Actions are
plain frozen dataclasses, so control decisions are *data*: they can be
logged, counted, compared across runs (the determinism contract), and
applied by whichever actuator owns the runtime.

Concrete policies live next door: :mod:`repro.control.shedding`,
:mod:`repro.control.uplink`, and :mod:`repro.control.migration`.  Policies
compose — a :class:`~repro.control.loop.ControlLoop` runs any number of
controllers in order, each seeing the same tick's view.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.control.provenance import DecisionRecord, ProvenanceBuffer
from repro.fleet.queues import DropPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.fleet.runtime import CameraLiveStats, FleetRuntime

__all__ = [
    "ControlAction",
    "SetDropPolicy",
    "SetCameraQuota",
    "SetCameraThreshold",
    "MigrateCamera",
    "SetUplinkWeights",
    "NodeView",
    "ClusterView",
    "Controller",
]


@dataclass(frozen=True)
class ControlAction:
    """Base class of every control-plane decision."""

    def describe(self) -> str:
        """One-line human/log form of the action."""
        return repr(self)


@dataclass(frozen=True)
class SetDropPolicy(ControlAction):
    """Switch one camera's queue overload policy."""

    node_id: str
    camera_id: str
    policy: DropPolicy

    def describe(self) -> str:
        return f"set_drop_policy {self.node_id}/{self.camera_id} -> {self.policy.value}"


@dataclass(frozen=True)
class SetCameraQuota(ControlAction):
    """Override (or with ``None`` restore) one camera's admission quota."""

    node_id: str
    camera_id: str
    quota: int | None

    def describe(self) -> str:
        quota = "default" if self.quota is None else str(self.quota)
        return f"set_camera_quota {self.node_id}/{self.camera_id} -> {quota}"


@dataclass(frozen=True)
class SetCameraThreshold(ControlAction):
    """Set one camera's live microclassifier decision threshold.

    The actuation point of runtime threshold drift: thresholds are calibrated
    once at training time, but a camera whose live match density runs away
    from its expected truth density gets its *session* threshold nudged —
    the shared trained model is never mutated.
    """

    node_id: str
    camera_id: str
    threshold: float

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")

    def describe(self) -> str:
        return (
            f"set_camera_threshold {self.node_id}/{self.camera_id} -> {self.threshold:.4f}"
        )


@dataclass(frozen=True)
class MigrateCamera(ControlAction):
    """Move one camera from ``source`` to ``destination`` mid-run."""

    camera_id: str
    source: str
    destination: str
    blackout_seconds: float

    def describe(self) -> str:
        return (
            f"migrate {self.camera_id} {self.source} -> {self.destination} "
            f"(blackout {self.blackout_seconds:.3f}s)"
        )


@dataclass(frozen=True)
class SetUplinkWeights(ControlAction):
    """Re-weight the work-conserving shared uplink from this tick onward."""

    weights: tuple[tuple[str, float], ...]

    def describe(self) -> str:
        parts = ", ".join(f"{node}={weight:.3f}" for node, weight in self.weights)
        return f"set_uplink_weights {parts}"

    def as_mapping(self) -> dict[str, float]:
        """The weights as a plain dict (what the uplink actuator wants)."""
        return dict(self.weights)


@dataclass(frozen=True)
class NodeView:
    """Read-only window onto one node for control policies."""

    node_id: str
    runtime: "FleetRuntime"

    def live_stats(self) -> dict[str, "CameraLiveStats"]:
        """Per-camera point-in-time stats (id order)."""
        return self.runtime.camera_live_stats()

    @property
    def num_workers(self) -> int:
        """Worker slots on this node."""
        return self.runtime.workers.num_workers

    def wait_histogram(self):
        """The node's queue-wait histogram (for windowed quantiles)."""
        return self.runtime.telemetry.histogram("latency.queue_wait_seconds")

    def counter_value(self, name: str) -> float:
        """Current value of one node counter (0.0 when absent)."""
        return self.runtime.telemetry.counters().get(name, 0.0)


@dataclass(frozen=True)
class ClusterView:
    """Everything a controller may observe at one control tick."""

    now: float
    interval: float
    tick_index: int
    nodes: tuple[NodeView, ...]
    horizon: float
    uplink_weights: Mapping[str, float] | None = None
    # Per-node guaranteed uplink rate in bps (static slice, or the GPS
    # guarantee under work conservation); None when the actuator has no
    # shared link to describe.  Uplink-aware policies divide a node's
    # estimated upload bits by its guarantee to see backlog building.
    uplink_guarantees: Mapping[str, float] | None = None

    @property
    def remaining_seconds(self) -> float:
        """Simulated time left until the last camera feed ends."""
        return max(0.0, self.horizon - self.now)

    def node(self, node_id: str) -> NodeView:
        """Look up one node's view by id."""
        for view in self.nodes:
            if view.node_id == node_id:
                return view
        raise KeyError(f"No node {node_id!r} in this cluster view")


class Controller(ABC):
    """One closed-loop policy: observe a tick's view, emit actions.

    Controllers may keep internal state across ticks (windowed counters,
    hysteresis timers); that state must be derived only from the views they
    were shown, so that identical runs produce identical decisions.

    Decision provenance: inside :meth:`decide`, call :meth:`record_decision`
    with one :class:`~repro.control.provenance.DecisionRecord` per decision
    context (including explicit no-ops with a reason).  The loop drains the
    records after each ``decide`` call and threads them — stamped with tick
    index, time, and action sequence links — into the control trace.  A
    controller that records nothing still traces: the loop synthesizes a
    minimal record per applied action.
    """

    name: str = "controller"

    @abstractmethod
    def decide(self, view: ClusterView) -> list[ControlAction]:
        """Return the actions to apply at this tick (possibly empty)."""

    # -- decision provenance ---------------------------------------------------
    # Lazily created so existing subclasses that never call super().__init__
    # (and third-party controllers) keep working unchanged.
    @property
    def _provenance(self) -> ProvenanceBuffer:
        buffer = getattr(self, "_provenance_buffer", None)
        if buffer is None:
            buffer = ProvenanceBuffer()
            object.__setattr__(self, "_provenance_buffer", buffer)
        return buffer

    def record_decision(self, record: DecisionRecord) -> None:
        """Stage one decision record for the loop to collect this tick."""
        self._provenance.append(record)

    def drain_decision_records(self) -> list[DecisionRecord]:
        """Remove and return every staged record (loop-facing)."""
        return self._provenance.drain()
