"""Dynamic uplink sharing: steer guaranteed shares toward observed demand.

A :class:`~repro.edge.uplink.WorkConservingUplink` already lets idle
capacity flow to backlogged nodes instant-by-instant; what it cannot do by
itself is change each node's *guaranteed* share when demand shifts for good
(a migrated-in camera, a scene that heats up).  This controller tracks each
node's upload demand — matched frames per interval, the quantity that turns
into event bits — as an exponential moving average and re-weights the link
toward the demand distribution whenever it drifts far enough from the
current weights.

Weight updates are :class:`~repro.control.policies.SetUplinkWeights`
actions; the sharded runtime schedules them into the uplink's replay at the
tick's simulated time, so the GPS drain honours them in order.  A
``min_share`` floor keeps any node from being starved of guaranteed
capacity no matter how quiet it looks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.policies import (
    ClusterView,
    ControlAction,
    Controller,
    SetUplinkWeights,
)
from repro.control.provenance import CandidateScore, DecisionRecord

__all__ = ["UplinkShareConfig", "UplinkShareController"]


@dataclass(frozen=True)
class UplinkShareConfig:
    """Tuning knobs of the uplink re-weighting policy."""

    smoothing: float = 0.5  # EMA weight of the newest interval's demand
    min_share: float = 0.10  # floor on any node's fraction of total weight
    rebalance_threshold: float = 0.10  # max per-node drift before re-weighting

    def __post_init__(self) -> None:
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if not 0.0 <= self.min_share < 1.0:
            raise ValueError("min_share must be in [0, 1)")
        if self.rebalance_threshold <= 0:
            raise ValueError("rebalance_threshold must be positive")


class UplinkShareController(Controller):
    """Re-weights the work-conserving uplink toward observed upload demand."""

    name = "uplink_share"

    def __init__(self, config: UplinkShareConfig | None = None) -> None:
        self.config = config or UplinkShareConfig()
        self._last_matched: dict[str, float] = {}
        self._demand_ema: dict[str, float] = {}

    def _gates(self) -> dict:
        return {
            "smoothing": self.config.smoothing,
            "min_share": self.config.min_share,
            "rebalance_threshold": self.config.rebalance_threshold,
        }

    def decide(self, view: ClusterView) -> list[ControlAction]:
        """Emit one weight update when demand drifts past the threshold."""
        if view.uplink_weights is None:
            # Statically sliced link; nothing to actuate — and nothing to
            # observe either, so skip the EMA update entirely.
            self.record_decision(
                DecisionRecord(
                    controller=self.name,
                    kind="idle",
                    gates=self._gates(),
                    reason="statically sliced uplink, nothing to actuate",
                )
            )
            return []
        node_ids = sorted(view.uplink_weights)
        for node in view.nodes:
            matched = node.counter_value("frames.matched")
            delta = max(0.0, matched - self._last_matched.get(node.node_id, 0.0))
            self._last_matched[node.node_id] = matched
            previous = self._demand_ema.get(node.node_id, 0.0)
            alpha = self.config.smoothing
            self._demand_ema[node.node_id] = (1 - alpha) * previous + alpha * delta
        total_demand = sum(self._demand_ema.get(n, 0.0) for n in node_ids)
        if total_demand <= 0:
            self.record_decision(
                DecisionRecord(
                    controller=self.name,
                    kind="hold",
                    inputs={"total_demand_ema": total_demand},
                    gates=self._gates(),
                    reason="no upload demand observed yet",
                )
            )
            return []
        # Hand every node its floor first, then split only the remaining
        # mass by demand — flooring-then-renormalizing would push quiet
        # nodes back below the floor.
        floor = min(self.config.min_share, 1.0 / len(node_ids))
        spare = 1.0 - floor * len(node_ids)
        target = {
            n: floor + spare * self._demand_ema.get(n, 0.0) / total_demand
            for n in node_ids
        }
        current_total = sum(view.uplink_weights[n] for n in node_ids)
        current = {n: view.uplink_weights[n] / current_total for n in node_ids}
        drift = max(abs(target[n] - current[n]) for n in node_ids)
        rebalance = drift > self.config.rebalance_threshold
        candidates = tuple(
            CandidateScore(
                candidate_id=n,
                score=target[n] - current[n],
                chosen=rebalance,
                detail=(
                    ("target_share", target[n]),
                    ("current_share", current[n]),
                    ("demand_ema", self._demand_ema.get(n, 0.0)),
                ),
            )
            for n in node_ids
        )
        if not rebalance:
            self.record_decision(
                DecisionRecord(
                    controller=self.name,
                    kind="hold",
                    inputs={"total_demand_ema": total_demand, "max_drift": drift},
                    gates=self._gates(),
                    candidates=candidates,
                    reason="demand drift inside the rebalance threshold",
                )
            )
            return []
        # The uplink rejects non-positive weights; with min_share=0 a
        # zero-demand node's target must still stay epsilon-positive.
        actions: list[ControlAction] = [
            SetUplinkWeights(
                weights=tuple((n, max(round(target[n], 6), 1e-6)) for n in node_ids)
            )
        ]
        self.record_decision(
            DecisionRecord(
                controller=self.name,
                kind="rebalance",
                inputs={"total_demand_ema": total_demand, "max_drift": drift},
                gates=self._gates(),
                candidates=candidates,
                actions=tuple(a.describe() for a in actions),
            )
        )
        return actions
