"""The control loop: lockstep node stepping, action application, accounting.

:class:`ControlLoop` drives any number of :class:`~repro.fleet.runtime.FleetRuntime`
nodes on one simulated clock: every ``interval_seconds`` it advances each
node to the tick time, hands the assembled
:class:`~repro.control.policies.ClusterView` to each controller in order,
and applies the returned actions through an *actuator*.  Determinism is the
core contract — ticks happen at fixed simulated times, controllers see
identical views on identical runs, and every applied action lands in
:attr:`ControlLoop.decision_log` plus the control telemetry registry, so two
runs can be compared decision-for-decision.

Two actuators ship here:

* :class:`ClusterActuator` — binds the loop to a
  :class:`~repro.fleet.sharding.ShardedFleetRuntime` (duck-typed: anything
  with ``nodes``, ``record_migration`` and optionally ``set_uplink_weights``),
  supporting shedding, uplink re-weighting, and camera migration;
* :class:`NodeActuator` — binds it to one standalone ``FleetRuntime``
  (shedding only; migration and uplink actions are rejected).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.control.policies import (
    ClusterView,
    ControlAction,
    Controller,
    MigrateCamera,
    NodeView,
    SetCameraQuota,
    SetCameraThreshold,
    SetDropPolicy,
    SetUplinkWeights,
)
from repro.control.provenance import DecisionRecord
from repro.fleet.runtime import FleetRuntime
from repro.fleet.telemetry import TelemetryRegistry
from repro.obs.timeline import MetricsTimeline

__all__ = ["ControlLoop", "ClusterActuator", "NodeActuator"]


class ClusterActuator:
    """Applies control actions to a sharded cluster runtime."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    @property
    def uplink_weights(self) -> dict[str, float] | None:
        """Current shared-uplink weights (None when statically sliced)."""
        getter = getattr(self.cluster, "current_uplink_weights", None)
        return getter() if callable(getter) else None

    @property
    def uplink_guarantees(self) -> dict[str, float] | None:
        """Per-node guaranteed uplink bps (None when the cluster has none)."""
        getter = getattr(self.cluster, "uplink_guarantees", None)
        return getter() if callable(getter) else None

    def apply(self, action: ControlAction, now: float) -> None:
        """Execute one action against the cluster at simulated time ``now``."""
        nodes: Mapping[str, FleetRuntime] = self.cluster.nodes
        if isinstance(action, SetDropPolicy):
            nodes[action.node_id].set_drop_policy(action.camera_id, action.policy)
        elif isinstance(action, SetCameraQuota):
            nodes[action.node_id].set_camera_quota(action.camera_id, action.quota)
        elif isinstance(action, SetCameraThreshold):
            nodes[action.node_id].set_camera_threshold(action.camera_id, action.threshold)
        elif isinstance(action, MigrateCamera):
            handoff = nodes[action.source].detach_camera(action.camera_id, now)
            nodes[action.destination].attach_camera(
                handoff, now, resume_time=now + action.blackout_seconds
            )
            self.cluster.record_migration(action.camera_id, action.source, action.destination)
        elif isinstance(action, SetUplinkWeights):
            self.cluster.set_uplink_weights(now, action.as_mapping())
        else:
            raise TypeError(f"Unsupported control action {type(action).__name__}")


class NodeActuator:
    """Applies control actions to one standalone node (shedding only)."""

    def __init__(self, runtime: FleetRuntime, node_id: str = "node0") -> None:
        self.runtime = runtime
        self.node_id = node_id

    @property
    def uplink_weights(self) -> None:
        """A single node has no shared uplink to re-weight."""
        return None

    @property
    def uplink_guarantees(self) -> dict[str, float]:
        """The node owns its whole uplink; the guarantee is its capacity."""
        return {self.node_id: self.runtime.uplink.capacity_bps}

    def apply(self, action: ControlAction, now: float) -> None:
        """Execute one action against the node at simulated time ``now``."""
        if isinstance(action, SetDropPolicy):
            self.runtime.set_drop_policy(action.camera_id, action.policy)
        elif isinstance(action, SetCameraQuota):
            self.runtime.set_camera_quota(action.camera_id, action.quota)
        elif isinstance(action, SetCameraThreshold):
            self.runtime.set_camera_threshold(action.camera_id, action.threshold)
        else:
            raise TypeError(
                f"{type(action).__name__} needs a cluster actuator, not a single node"
            )


class ControlLoop:
    """Ticks controllers at a fixed simulated interval and applies actions."""

    def __init__(
        self,
        controllers: Sequence[Controller],
        interval_seconds: float = 0.25,
        telemetry: TelemetryRegistry | None = None,
        timeline: MetricsTimeline | None = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        names = [c.name for c in controllers]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"Duplicate controller names: {sorted(duplicates)}")
        self.controllers = list(controllers)
        self.interval_seconds = float(interval_seconds)
        self.telemetry = telemetry or TelemetryRegistry()
        # Optional metrics timeline: when set, every tick scrapes each node's
        # registry (plus the loop's own control counters under "control"), so
        # the time-series exporters see exactly the control-interval cadence.
        self.timeline = timeline
        self.decision_log: list[str] = []
        # Decision provenance: one JSON-ready dict per DecisionRecord, stamped
        # with tick index, simulated time, its own sequence number, and the
        # decision_log indices of the actions it produced.
        self.decision_records: list[dict] = []
        self.ticks = 0

    # -- driving -------------------------------------------------------------
    def drive(self, nodes: Mapping[str, FleetRuntime], actuator) -> None:
        """Run every node to completion, ticking between intervals.

        All nodes advance to each tick time before any controller observes,
        so every controller sees a consistent cluster snapshot.  The loop
        ends when no node has pending events (migrations can add events, so
        the check re-runs every tick).
        """
        tick_time = self.interval_seconds
        while any(runtime.has_pending_events for runtime in nodes.values()):
            for runtime in nodes.values():
                runtime.advance_until(tick_time)
            self.tick(tick_time, nodes, actuator)
            tick_time += self.interval_seconds

    def run_node(self, runtime: FleetRuntime, node_id: str = "node0") -> None:
        """Drive one standalone node under this loop (shedding policies)."""
        runtime.start()
        self.drive({node_id: runtime}, NodeActuator(runtime, node_id))

    def tick(self, now: float, nodes: Mapping[str, FleetRuntime], actuator) -> list[ControlAction]:
        """Observe, decide, and actuate once; returns the applied actions."""
        self.ticks += 1
        self.telemetry.counter("control.ticks").inc()
        view = ClusterView(
            now=now,
            interval=self.interval_seconds,
            tick_index=self.ticks - 1,
            nodes=tuple(NodeView(node_id, runtime) for node_id, runtime in nodes.items()),
            horizon=max((runtime.horizon for runtime in nodes.values()), default=0.0),
            uplink_weights=actuator.uplink_weights,
            uplink_guarantees=getattr(actuator, "uplink_guarantees", None),
        )
        applied: list[ControlAction] = []
        for controller in self.controllers:
            action_start = len(self.decision_log)
            actions = controller.decide(view)
            for action in actions:
                actuator.apply(action, now)
                self._account(controller, action, now)
                applied.append(action)
            self._collect_provenance(controller, actions, action_start, now)
        if self.timeline is not None:
            for node_id, runtime in nodes.items():
                self.timeline.scrape(now, node_id, runtime.telemetry)
            self.timeline.scrape(now, "control", self.telemetry)
        return applied

    # -- decision provenance ---------------------------------------------------
    def _collect_provenance(
        self,
        controller: Controller,
        actions: Sequence[ControlAction],
        action_start: int,
        now: float,
    ) -> None:
        """Drain the controller's staged records and stamp them into the log.

        Records are linked to the global action sequence (decision_log
        indices) positionally: each record consumes as many sequence numbers
        as it claims actions, in staged order.  A controller that stages
        nothing still traces — the loop synthesizes one minimal record per
        applied action, so third-party controllers show up in provenance
        with at least *what* they did.
        """
        drain = getattr(controller, "drain_decision_records", None)
        records = drain() if callable(drain) else []
        claimed = sum(len(record.actions) for record in records)
        if claimed != len(actions):
            # The controller's account of its actions disagrees with what it
            # returned; trust the returned actions and synthesize.
            records = [
                DecisionRecord(
                    controller=controller.name,
                    kind="action",
                    actions=(action.describe(),),
                )
                for action in actions
            ]
        cursor = action_start
        for record in records:
            entry = record.to_dict()
            entry["tick"] = self.ticks - 1
            entry["t"] = now
            entry["seq"] = len(self.decision_records)
            entry["action_seqs"] = list(range(cursor, cursor + len(record.actions)))
            cursor += len(record.actions)
            self.decision_records.append(entry)
            self.telemetry.counter("control.decisions.total").inc()
            if record.is_noop:
                self.telemetry.counter("control.decisions.noop").inc()

    # -- accounting ----------------------------------------------------------
    def _account(self, controller: Controller, action: ControlAction, now: float) -> None:
        self.decision_log.append(f"t={now:.3f} {controller.name}: {action.describe()}")
        self.telemetry.counter("control.actions.total").inc()
        self.telemetry.counter(f"control.actions.{controller.name}").inc()
        if isinstance(action, SetCameraQuota) and action.quota is not None:
            self.telemetry.counter("control.shedding.interventions").inc()
        elif isinstance(action, SetCameraThreshold):
            self.telemetry.counter("control.threshold.drifts").inc()
        elif isinstance(action, MigrateCamera):
            self.telemetry.counter("control.migration.performed").inc()
        elif isinstance(action, SetUplinkWeights):
            self.telemetry.counter("control.uplink.rebalances").inc()

    def counter_value(self, name: str) -> float:
        """Current value of one control counter (0.0 when absent)."""
        return self.telemetry.counters().get(name, 0.0)
