"""Adaptive load shedding: telemetry-driven drop policies and quotas.

The static fleet sheds load wherever the bounded queues happen to overflow —
every camera pays the same price regardless of how much signal it carries.
This controller replaces that with a closed loop on two telemetry signals:

* **queue-wait p99 over the last control interval** (windowed, per node) —
  the overload detector;
* **per-camera match density** (matched / scored frames so far) — the value
  estimate deciding *who* sheds.

When a node's windowed p99 crosses ``high_watermark_seconds``, the k
lowest-density cameras are stepped down an admission-quota ladder
(``quota_ladder``, e.g. unlimited → 2 → 1) and flipped to ``DROP_NEWEST``
(reject fresh frames at the door rather than churning the queue).  When the
p99 falls back under ``low_watermark_seconds`` the most valuable capped
camera is restored one step per tick — to the drop policy it had *before*
tightening (``restore_policy`` is only the fallback when that is unknown).
The gap between the two watermarks plus the one-step-per-tick relaxation is
the hysteresis that keeps the policy from flapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.policies import (
    ClusterView,
    ControlAction,
    Controller,
    SetCameraQuota,
    SetDropPolicy,
)
from repro.control.provenance import CandidateScore, DecisionRecord
from repro.fleet.queues import DropPolicy

__all__ = ["VALUE_SIGNALS", "SheddingConfig", "AdaptiveSheddingController"]


VALUE_SIGNALS = ("match_density", "truth_density")


@dataclass(frozen=True)
class SheddingConfig:
    """Tuning knobs of the adaptive shedding policy.

    ``value_signal`` picks the per-camera value estimate deciding *who*
    sheds: ``"match_density"`` (the default proxy — matched / scored frames
    so far) or ``"truth_density"`` (ground-truth positive fraction of
    generated frames, populated when the fleet runs with
    :attr:`~repro.fleet.runtime.FleetConfig.accuracy_task` set — the
    accuracy plane's oracle signal for studying how much proxy error
    costs).  On a node without the accuracy plane, ``truth_density``
    falls back to the match-density proxy per camera.
    """

    high_watermark_seconds: float = 0.20
    low_watermark_seconds: float = 0.05
    cameras_per_step: int = 2
    quota_ladder: tuple[int, ...] = (2, 1)
    restore_policy: DropPolicy = DropPolicy.DROP_OLDEST
    value_signal: str = "match_density"

    def __post_init__(self) -> None:
        if self.high_watermark_seconds <= self.low_watermark_seconds:
            raise ValueError("high watermark must exceed the low watermark (hysteresis)")
        if self.cameras_per_step < 1:
            raise ValueError("cameras_per_step must be at least 1")
        if not self.quota_ladder:
            raise ValueError("quota_ladder must have at least one rung")
        if any(q < 1 for q in self.quota_ladder):
            raise ValueError("quota_ladder rungs must be at least 1")
        if self.value_signal not in VALUE_SIGNALS:
            raise ValueError(
                f"Unknown value_signal {self.value_signal!r}; expected one of {VALUE_SIGNALS}"
            )


@dataclass
class _NodeSheddingState:
    """Per-node controller memory across ticks."""

    wait_index: int = 0  # histogram observation count at the previous tick
    capped: dict[str, int] = field(default_factory=dict)  # camera -> ladder rung index
    original_policy: dict[str, DropPolicy] = field(default_factory=dict)


class QuotaLadderShedder(Controller):
    """Shared mechanics of ladder-based shedding policies.

    Both the adaptive controller here and the value-aware controller in
    :mod:`repro.control.value` shed the same way — step victims down an
    admission-quota ladder, flip fresh victims to ``DROP_NEWEST``, restore
    one camera per calm tick to its pre-tighten policy — and differ only in
    *when* they act and *who* they rank first.  Subclasses implement
    :meth:`decide`; the config is duck-typed to anything exposing
    ``quota_ladder``, ``cameras_per_step``, and ``restore_policy``.
    """

    def __init__(self, config) -> None:
        self.config = config
        self._nodes: dict[str, _NodeSheddingState] = {}

    def _node_state(self, node_id: str) -> _NodeSheddingState:
        return self._nodes.setdefault(node_id, _NodeSheddingState())

    def _value(self, stats) -> float:
        """The configured per-camera value estimate (higher = keep).

        Reads ``self.config.value_signal``.  ``truth_density`` falls back to
        the match-density proxy when the node is not running the accuracy
        plane (``truth_known`` is False on its live stats) — otherwise a
        misconfigured pairing would silently rank every camera at 0.0 and
        shed purely by frame rate.
        """
        if self.config.value_signal == "truth_density" and getattr(
            stats, "truth_known", False
        ):
            return stats.truth_density
        return stats.match_density

    @staticmethod
    def _forget_departed(state: _NodeSheddingState, stats) -> None:
        """Drop caps of cameras that migrated away mid-interval.

        The runtime clears the quota override on detach; forgetting here too
        means a returning camera starts fresh and relax ticks are not wasted
        on cameras the node no longer hosts.
        """
        for camera_id in [c for c in state.capped if c not in stats]:
            del state.capped[camera_id]
            state.original_policy.pop(camera_id, None)

    def _tighten(self, node_id: str, state: _NodeSheddingState, ranked) -> list[ControlAction]:
        """Step up to ``cameras_per_step`` of ``ranked`` down the ladder."""
        ladder = self.config.quota_ladder
        actions: list[ControlAction] = []
        stepped = 0
        for camera in ranked:
            if stepped >= self.config.cameras_per_step:
                break
            rung = state.capped.get(camera.camera_id)
            next_rung = 0 if rung is None else min(rung + 1, len(ladder) - 1)
            if rung == next_rung:
                continue  # already at the bottom of the ladder
            state.capped[camera.camera_id] = next_rung
            stepped += 1
            actions.append(
                SetCameraQuota(node_id=node_id, camera_id=camera.camera_id, quota=ladder[next_rung])
            )
            if rung is None:
                state.original_policy[camera.camera_id] = camera.drop_policy
                actions.append(
                    SetDropPolicy(
                        node_id=node_id,
                        camera_id=camera.camera_id,
                        policy=DropPolicy.DROP_NEWEST,
                    )
                )
        return actions

    def _relax(self, node_id: str, state: _NodeSheddingState, stats, value_key) -> list[ControlAction]:
        """Restore the capped camera ranked highest by ``value_key``, one per tick."""
        candidates = sorted(
            (camera_id for camera_id in state.capped if camera_id in stats),
            key=lambda camera_id: (-value_key(stats[camera_id]), camera_id),
        )
        if not candidates:
            # Every capped camera migrated away; forget them.
            state.capped.clear()
            state.original_policy.clear()
            return []
        camera_id = candidates[0]
        del state.capped[camera_id]
        restored = state.original_policy.pop(camera_id, self.config.restore_policy)
        return [
            SetCameraQuota(node_id=node_id, camera_id=camera_id, quota=None),
            SetDropPolicy(node_id=node_id, camera_id=camera_id, policy=restored),
        ]

    # -- provenance ------------------------------------------------------------
    @staticmethod
    def _chosen_cameras(actions: list[ControlAction]) -> set[str]:
        """Camera ids the tick's shedding actions actually touched."""
        return {
            action.camera_id
            for action in actions
            if isinstance(action, (SetCameraQuota, SetDropPolicy))
        }

    def _ladder_candidates(self, ranked, score_key, chosen: set[str]):
        """Ranked-order candidate scores for a tighten/relax decision."""
        return tuple(
            CandidateScore(
                candidate_id=stats.camera_id,
                score=score_key(stats),
                chosen=stats.camera_id in chosen,
                detail=(
                    ("frame_rate", stats.frame_rate),
                    ("match_density", stats.match_density),
                    ("service_seconds", stats.service_seconds),
                ),
            )
            for stats in ranked
        )

    def _shed_gates(self) -> dict:
        """The configured thresholds every shedding decision is gated by."""
        return {
            "high_watermark_seconds": self.config.high_watermark_seconds,
            "low_watermark_seconds": self.config.low_watermark_seconds,
            "quota_ladder": "/".join(str(q) for q in self.config.quota_ladder),
            "cameras_per_step": self.config.cameras_per_step,
            "value_signal": self.config.value_signal,
        }


class AdaptiveSheddingController(QuotaLadderShedder):
    """Per-camera drop-policy and quota adjustment from windowed telemetry."""

    name = "adaptive_shedding"

    def __init__(self, config: SheddingConfig | None = None) -> None:
        super().__init__(config or SheddingConfig())

    def decide(self, view: ClusterView) -> list[ControlAction]:
        """Tighten overloaded nodes, relax recovered ones."""
        actions: list[ControlAction] = []
        for node in view.nodes:
            state = self._node_state(node.node_id)
            histogram = node.wait_histogram()
            window_p99 = histogram.percentile_since(99, state.wait_index)
            state.wait_index = histogram.count
            stats = node.live_stats()
            self._forget_departed(state, stats)
            inputs = {
                "window_queue_wait_p99": window_p99,
                "capped_cameras": float(len(state.capped)),
            }
            candidates: tuple[CandidateScore, ...] = ()
            reason = None
            if window_p99 > self.config.high_watermark_seconds:
                # Shed from the cameras with the least event signal per
                # scored frame; ties break on camera_id so decisions replay
                # identically.
                kind = "tighten"
                ranked = sorted(
                    stats.values(),
                    key=lambda s: (self._value(s), -s.frame_rate, s.camera_id),
                )
                node_actions = self._tighten(node.node_id, state, ranked)
                candidates = self._ladder_candidates(
                    ranked, self._value, self._chosen_cameras(node_actions)
                )
                if not node_actions:
                    reason = "every candidate already sits at the ladder floor"
            elif window_p99 < self.config.low_watermark_seconds and state.capped:
                kind = "relax"
                ranked = sorted(
                    (stats[c] for c in state.capped if c in stats),
                    key=lambda s: (-self._value(s), s.camera_id),
                )
                node_actions = self._relax(node.node_id, state, stats, self._value)
                candidates = self._ladder_candidates(
                    ranked, self._value, self._chosen_cameras(node_actions)
                )
                if not node_actions:
                    reason = "every capped camera migrated away"
            else:
                kind = "idle"
                node_actions = []
                reason = (
                    "queue-wait p99 inside the watermark band"
                    if state.capped
                    else "queue-wait p99 inside the watermark band, nothing capped"
                )
            self.record_decision(
                DecisionRecord(
                    controller=self.name,
                    kind=kind,
                    node_id=node.node_id,
                    inputs=inputs,
                    gates=self._shed_gates(),
                    candidates=candidates,
                    actions=tuple(a.describe() for a in node_actions),
                    reason=reason,
                )
            )
            actions.extend(node_actions)
        return actions
