"""Camera migration: re-balance placement mid-run when load shifts.

Placement policies decide once, from *estimated* costs; real fleets drift —
cameras come online mid-run, scenes heat up, estimates err.  This controller
watches each node's **offered utilization** (arriving work per interval,
measured in worker-seconds of per-camera service time) and, when the
cluster stays imbalanced long enough, hands one camera from the hottest
node to the coolest via the runtime's detach/attach surface.

Migration is never free, so the decision is gated by an explicit
:class:`MigrationCostModel`: a handoff silences the camera for
``blackout_seconds`` (plus ``cold_start_seconds`` when the destination has
no base DNN resident for that camera's resolution — the FilterForward
computation-sharing premise cuts both ways), and the controller only moves
when the estimated shed reduction over the remaining horizon exceeds the
blackout loss by ``payback_factor``.

Flapping is prevented three ways: the imbalance must *sustain* for
``sustain_ticks`` consecutive ticks, every move starts a ``cooldown_ticks``
quiet period, and a camera that just moved cannot move again for
``camera_cooldown_ticks``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.policies import (
    ClusterView,
    ControlAction,
    Controller,
    MigrateCamera,
    NodeView,
)
from repro.control.provenance import CandidateScore, DecisionRecord

__all__ = ["MigrationCostModel", "MigrationConfig", "MigrationController"]


@dataclass(frozen=True)
class MigrationCostModel:
    """What one camera handoff costs, in blackout seconds."""

    blackout_seconds: float = 0.25
    cold_start_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.blackout_seconds < 0 or self.cold_start_seconds < 0:
            raise ValueError("blackout and cold-start seconds must be non-negative")

    def blackout_for(
        self, resolution: tuple[int, int], destination_resolutions: set[tuple[int, int]]
    ) -> float:
        """Total blackout for moving a camera of ``resolution``.

        A destination already running a base DNN at this resolution restarts
        the camera warm; otherwise the model build adds a cold start.
        """
        blackout = self.blackout_seconds
        if resolution not in destination_resolutions:
            blackout += self.cold_start_seconds
        return blackout

    def frames_lost(self, frame_rate: float, blackout: float) -> float:
        """Expected frames the blackout swallows."""
        return frame_rate * blackout


@dataclass(frozen=True)
class MigrationConfig:
    """Tuning knobs of the migration policy."""

    imbalance_threshold: float = 1.20  # hottest/mean offered utilization
    overload_threshold: float = 1.0  # hottest node must actually be over capacity
    headroom_threshold: float = 0.85  # coolest node must sit below this
    sustain_ticks: int = 2
    cooldown_ticks: int = 4
    camera_cooldown_ticks: int = 8
    payback_factor: float = 2.0
    cost_model: MigrationCostModel = field(default_factory=MigrationCostModel)

    def __post_init__(self) -> None:
        if self.imbalance_threshold <= 1.0:
            raise ValueError("imbalance_threshold must exceed 1.0")
        if self.sustain_ticks < 1 or self.cooldown_ticks < 0 or self.camera_cooldown_ticks < 0:
            raise ValueError("tick windows must be non-negative (sustain at least 1)")
        if self.payback_factor < 1.0:
            raise ValueError("payback_factor must be at least 1.0")


class MigrationController(Controller):
    """Moves cameras off sustained hotspots, with cost gating and hysteresis."""

    name = "camera_migration"

    def __init__(self, config: MigrationConfig | None = None) -> None:
        self.config = config or MigrationConfig()
        self._last_generated: dict[tuple[str, str], int] = {}
        self._sustained = 0
        self._cooldown = 0
        self._camera_cooldowns: dict[str, int] = {}
        self.migrations: list[tuple[float, str, str, str]] = []

    # -- observation ---------------------------------------------------------
    def _offered_utilization(self, node: NodeView, interval: float) -> float:
        """Arriving work over the last interval, per worker-second."""
        work_seconds = 0.0
        for camera_id, stats in node.live_stats().items():
            key = (node.node_id, camera_id)
            previous = self._last_generated.get(key, 0)
            delta = max(0, stats.generated - previous)
            self._last_generated[key] = stats.generated
            # Attach-time blackout losses land in `generated` as one lump;
            # cap the window at what the camera can physically offer so
            # phantom frames cannot mark a just-relieved node as hot.
            delta = min(delta, int(stats.frame_rate * interval) + 1)
            work_seconds += delta * stats.service_seconds
        return work_seconds / (node.num_workers * interval)

    def _gates(self, extra: dict | None = None) -> dict:
        gates = {
            "imbalance_threshold": self.config.imbalance_threshold,
            "overload_threshold": self.config.overload_threshold,
            "headroom_threshold": self.config.headroom_threshold,
            "sustain_ticks": self.config.sustain_ticks,
            "cooldown_ticks": self.config.cooldown_ticks,
            "payback_factor": self.config.payback_factor,
        }
        if extra:
            gates.update(extra)
        return gates

    def _hold(self, reason: str, inputs: dict, gates_extra: dict | None = None) -> list:
        self.record_decision(
            DecisionRecord(
                controller=self.name,
                kind="hold",
                inputs=inputs,
                gates=self._gates(gates_extra),
                reason=reason,
            )
        )
        return []

    def decide(self, view: ClusterView) -> list[ControlAction]:
        """Migrate one camera when imbalance sustains and the move pays back."""
        utilizations = {
            node.node_id: self._offered_utilization(node, view.interval)
            for node in view.nodes
        }
        for camera_id in sorted(self._camera_cooldowns):
            self._camera_cooldowns[camera_id] -= 1
            if self._camera_cooldowns[camera_id] <= 0:
                del self._camera_cooldowns[camera_id]
        if self._cooldown > 0:
            self._cooldown -= 1
            self._sustained = 0
            return self._hold(
                "migration cooldown active",
                {"cooldown_remaining": float(self._cooldown)},
            )
        if len(utilizations) < 2:
            return self._hold(
                "fewer than two nodes, nowhere to move",
                {"nodes": float(len(utilizations))},
            )
        mean = sum(utilizations.values()) / len(utilizations)
        hottest = max(sorted(utilizations), key=lambda n: utilizations[n])
        coolest = min(sorted(utilizations), key=lambda n: utilizations[n])
        inputs = {
            "mean_utilization": mean,
            "hottest_utilization": utilizations[hottest],
            "coolest_utilization": utilizations[coolest],
            "sustained_ticks": float(self._sustained),
        }
        gates_extra = {"hottest": hottest, "coolest": coolest}
        imbalanced = (
            mean > 0
            and utilizations[hottest] / mean > self.config.imbalance_threshold
            and utilizations[hottest] > self.config.overload_threshold
            and utilizations[coolest] < self.config.headroom_threshold
        )
        if not imbalanced:
            self._sustained = 0
            return self._hold("cluster inside the imbalance gates", inputs, gates_extra)
        self._sustained += 1
        inputs["sustained_ticks"] = float(self._sustained)
        if self._sustained < self.config.sustain_ticks:
            return self._hold(
                "imbalance observed but not yet sustained", inputs, gates_extra
            )
        action, candidates = self._pick_move(view, hottest, coolest, utilizations)
        if action is None:
            self.record_decision(
                DecisionRecord(
                    controller=self.name,
                    kind="hold",
                    inputs=inputs,
                    gates=self._gates(gates_extra),
                    candidates=candidates,
                    reason="no candidate camera pays back its blackout",
                )
            )
            return []
        self._sustained = 0
        self._cooldown = self.config.cooldown_ticks
        self._camera_cooldowns[action.camera_id] = self.config.camera_cooldown_ticks
        self.migrations.append((view.now, action.camera_id, hottest, coolest))
        self.record_decision(
            DecisionRecord(
                controller=self.name,
                kind="migrate",
                inputs=inputs,
                gates=self._gates(gates_extra),
                candidates=candidates,
                actions=(action.describe(),),
            )
        )
        return [action]

    # -- the move ------------------------------------------------------------
    def _pick_move(
        self,
        view: ClusterView,
        source_id: str,
        destination_id: str,
        utilizations: dict[str, float],
    ) -> tuple[MigrateCamera | None, tuple[CandidateScore, ...]]:
        source = view.node(source_id)
        destination = view.node(destination_id)
        gap = utilizations[source_id] - utilizations[destination_id]
        if gap <= 0:
            return None, ()
        destination_resolutions = {
            stats.resolution for stats in destination.live_stats().values()
        }
        workers = source.num_workers
        best: tuple[float, str] | None = None
        best_blackout = 0.0
        # Every cooldown-free camera on the hotspot is a scored candidate;
        # score is the pair-leveling residual (lower = better move).
        scored: dict[str, tuple[float, tuple[tuple[str, float], ...], bool]] = {}
        for camera_id, stats in sorted(source.live_stats().items()):
            if camera_id in self._camera_cooldowns:
                continue
            camera_util = stats.frame_rate * stats.service_seconds / workers
            blackout = self.config.cost_model.blackout_for(
                stats.resolution, destination_resolutions
            )
            lost = self.config.cost_model.frames_lost(stats.frame_rate, blackout)
            # Frames the hotspot sheds that this camera's departure would save:
            # the source's excess arrival work, expressed in frames of this
            # camera, over the remaining horizon — capped by what the camera
            # itself will offer.
            excess_util = max(0.0, utilizations[source_id] - 1.0)
            saved_fps = min(
                stats.frame_rate, excess_util * workers / max(stats.service_seconds, 1e-12)
            )
            saved = saved_fps * view.remaining_seconds
            residual = abs(gap - 2.0 * camera_util)
            detail = (
                ("camera_utilization", camera_util),
                ("blackout_seconds", blackout),
                ("frames_lost", lost),
                ("frames_saved", saved),
            )
            viable = (
                0 < camera_util <= gap
                and saved >= lost * self.config.payback_factor
            )
            scored[camera_id] = (residual, detail, viable)
            if not viable:
                continue
            # Prefer the camera whose move best levels the pair.
            if best is None or (residual, camera_id) < best:
                best = (residual, camera_id)
                best_blackout = blackout
        candidates = tuple(
            CandidateScore(
                candidate_id=camera_id,
                score=residual,
                chosen=best is not None and camera_id == best[1],
                detail=detail,
            )
            for camera_id, (residual, detail, _viable) in sorted(scored.items())
        )
        if best is None:
            return None, candidates
        return (
            MigrateCamera(
                camera_id=best[1],
                source=source_id,
                destination=destination_id,
                blackout_seconds=best_blackout,
            ),
            candidates,
        )
