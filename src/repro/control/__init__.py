"""The telemetry-driven adaptive control plane.

Constrained edge nodes cannot statically provision their way out of
overload: the paper's budget argument (fixed compute, fixed uplink) meets
workloads that shift mid-run.  This package closes the loop the static
fleet leaves open — a deterministic :class:`~repro.control.loop.ControlLoop`
observes the telemetry registry every control interval and actuates the
runtime through typed, logged actions:

* :mod:`repro.control.shedding` — per-camera drop policies and admission
  quotas driven by windowed queue-wait p99 and per-camera match density,
  replacing fixed-capacity drops;
* :mod:`repro.control.value` — accuracy-aware control: shedding ranked by
  predicted event value per service-second (with an uplink-backlog detector
  that sheds upload-heavy cameras when the link, not the CPU, is the
  bottleneck) and runtime threshold drift
  (:class:`~repro.control.policies.SetCameraThreshold`) keeping each
  camera's frozen calibrated threshold near its live event rate;
* :mod:`repro.control.uplink` — guaranteed-share re-weighting of the
  work-conserving shared uplink
  (:class:`~repro.edge.uplink.WorkConservingUplink`) toward observed upload
  demand;
* :mod:`repro.control.migration` — mid-run camera handoff between nodes
  when imbalance sustains, gated by an explicit migration-cost model with
  hysteresis against flapping;
* :mod:`repro.control.hierarchy` — the kilocamera scale-out: per-node local
  control loops plus a :class:`~repro.control.hierarchy.ClusterCoordinator`
  that exchanges only fixed-size per-node aggregate summaries (counts,
  rates, mergeable quantile sketches), bounding cluster-side control and
  telemetry cost at O(nodes) instead of O(cameras x metrics);
* :mod:`repro.control.provenance` — decision provenance: every controller
  emits a :class:`~repro.control.provenance.DecisionRecord` per decision
  context per tick (telemetry inputs read, candidates ranked with scores,
  gating thresholds, and the actions — or an explicit no-op with reason),
  which the loop stamps and threads into the control trace;
* :mod:`repro.control.trace` — replayable control traces: every applied
  action, its decision provenance, actuation time, and final telemetry
  value serialized to a stable JSONL schema so separate processes can diff
  two runs (the golden-trace regression harness), with
  :func:`~repro.control.trace.explain_action` walking any action back to
  the decision that produced it.

Policies implement one interface (:class:`~repro.control.policies.Controller`)
and compose inside one loop; the
:class:`~repro.fleet.sharding.ShardedFleetRuntime` accepts a loop and
reports control-plane outcomes (migrations performed, reclaimed uplink
bytes, shedding interventions) in its cluster report.  Every decision is
a pure function of simulated telemetry, so identical runs produce
bit-identical decision logs.
"""

from repro.control.hierarchy import (
    ClusterCoordinator,
    HierarchicalControlPlane,
    NodeAggregate,
    NodeControlPlane,
    QuantileSketch,
    default_local_controllers,
)
from repro.control.loop import ClusterActuator, ControlLoop, NodeActuator
from repro.control.migration import (
    MigrationConfig,
    MigrationController,
    MigrationCostModel,
)
from repro.control.policies import (
    ClusterView,
    ControlAction,
    Controller,
    MigrateCamera,
    NodeView,
    SetCameraQuota,
    SetCameraThreshold,
    SetDropPolicy,
    SetUplinkWeights,
)
from repro.control.provenance import CandidateScore, DecisionRecord
from repro.control.shedding import AdaptiveSheddingController, SheddingConfig
from repro.control.value import (
    ThresholdDriftConfig,
    ThresholdDriftController,
    ValueSheddingConfig,
    ValueSheddingController,
)
from repro.control.trace import (
    TRACE_SCHEMA,
    control_trace_records,
    diff_traces,
    explain_action,
    load_trace,
    trace_to_jsonl,
    write_control_trace,
)
from repro.control.uplink import UplinkShareConfig, UplinkShareController

__all__ = [
    "TRACE_SCHEMA",
    "AdaptiveSheddingController",
    "CandidateScore",
    "ClusterActuator",
    "ClusterCoordinator",
    "ClusterView",
    "ControlAction",
    "ControlLoop",
    "Controller",
    "DecisionRecord",
    "HierarchicalControlPlane",
    "MigrateCamera",
    "MigrationConfig",
    "MigrationController",
    "MigrationCostModel",
    "NodeActuator",
    "NodeAggregate",
    "NodeControlPlane",
    "NodeView",
    "QuantileSketch",
    "SetCameraQuota",
    "SetCameraThreshold",
    "SetDropPolicy",
    "SetUplinkWeights",
    "SheddingConfig",
    "ThresholdDriftConfig",
    "ThresholdDriftController",
    "UplinkShareConfig",
    "UplinkShareController",
    "ValueSheddingConfig",
    "ValueSheddingController",
    "control_trace_records",
    "default_local_controllers",
    "diff_traces",
    "explain_action",
    "load_trace",
    "trace_to_jsonl",
    "write_control_trace",
]
