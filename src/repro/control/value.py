"""Accuracy-aware control: shed by event value per service-second, drift thresholds.

The adaptive shedding policy of :mod:`repro.control.shedding` answers *when*
to shed (windowed queue-wait p99) and *who* (raw per-camera value), but it
optimizes a proxy objective — drop rate — and it is blind to two things the
accuracy plane made measurable:

* **what a scored frame costs**: at equal event density, a camera whose
  frames take 3x the service time buys 3x less accuracy per worker-second,
  so value alone mis-ranks heterogeneous fleets;
* **which resource is actually scarce**: queue-wait watermarks only see the
  CPU.  When the shared uplink, not compute, is the bottleneck, the right
  cameras to shed are the *upload-heavy* ones, whatever their queue waits
  look like.

:class:`ValueSheddingController` closes both gaps.  It ranks cameras by
**predicted event value per service-second** — the configured value signal
(:attr:`ValueSheddingConfig.value_signal`: live ``truth_density`` from the
accuracy plane, or the ``match_density`` proxy) divided by the camera's
cost-model service time — and it watches two overload detectors per node:
the windowed queue-wait p99 (compute pressure) and the node's *estimated
uplink backlog* (live ``uplink.estimated_bits`` against the node's
guaranteed share from :attr:`~repro.control.policies.ClusterView.uplink_guarantees`).
Compute overload sheds the cameras buying the least accuracy per
worker-second; uplink overload sheds the cameras buying the least accuracy
per uplink bit.  Relaxation restores the most valuable capped camera first,
one per tick, with the same watermark hysteresis the adaptive policy uses.

:class:`ThresholdDriftController` closes a second loop the training
protocol leaves open: per-camera thresholds are calibrated once, on a short
training clip, and frozen.  Live, the accuracy plane exposes both what the
camera's microclassifier is matching and how many truly-positive frames it
actually scored (both rates over *scored* frames, so co-deployed shedding
cannot masquerade as under-firing); when the two run apart over a windowed
sample, the controller nudges the camera's *session* threshold —
a typed :class:`~repro.control.policies.SetCameraThreshold` action applied
through :meth:`repro.fleet.runtime.FleetRuntime.set_camera_threshold` —
up when the MC over-fires (precision leak) and down when it under-fires
(recall leak).  The shared trained model is never mutated, so cached models
stay calibration-clean for other runs.

Both controllers are deterministic functions of the views they observe;
composed in one :class:`~repro.control.loop.ControlLoop` they give the
cluster an accuracy objective: shed where events are not, score where they
are, and keep every camera's operating point near its live event rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.control.policies import (
    ClusterView,
    ControlAction,
    Controller,
    NodeView,
    SetCameraThreshold,
)
from repro.control.provenance import CandidateScore, DecisionRecord
from repro.control.shedding import QuotaLadderShedder, SheddingConfig

__all__ = [
    "ValueSheddingConfig",
    "ValueSheddingController",
    "ThresholdDriftConfig",
    "ThresholdDriftController",
]


@dataclass(frozen=True)
class ValueSheddingConfig(SheddingConfig):
    """Tuning knobs of the value-per-service-second shedding policy.

    Extends :class:`~repro.control.shedding.SheddingConfig` (compute
    watermarks, ladder, value signal — validation included) with uplink
    watermarks bounding the node's *estimated* upload backlog in seconds
    (a fluid-queue model: estimated bits arrive, the node's guaranteed
    uplink rate drains).  The inherited ``value_signal`` defaults to
    ``"truth_density"`` here — the accuracy plane's live oracle, falling
    back to match density on cameras without ground truth.
    """

    uplink_high_watermark_seconds: float = 1.50
    uplink_low_watermark_seconds: float = 0.50
    value_signal: str = "truth_density"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.uplink_high_watermark_seconds <= self.uplink_low_watermark_seconds:
            raise ValueError(
                "uplink high watermark must exceed the uplink low watermark (hysteresis)"
            )


@dataclass
class _NodeUplinkEstimate:
    """Fluid-queue state of one node's estimated uplink backlog."""

    last_bits: float = 0.0
    last_time: float = 0.0
    backlog_seconds: float = 0.0


class ValueSheddingController(QuotaLadderShedder):
    """Sheds by predicted event value per scarce-resource unit, not by queue luck.

    The tighten/relax/ladder mechanics are shared with
    :class:`~repro.control.shedding.AdaptiveSheddingController`; this
    controller differs in its two overload detectors and in ranking victims
    by value per scarce-resource unit.
    """

    name = "value_shedding"

    def __init__(self, config: ValueSheddingConfig | None = None) -> None:
        super().__init__(config or ValueSheddingConfig())
        self._uplink: dict[str, _NodeUplinkEstimate] = {}

    # -- value estimates (``_value`` comes from the shared base) ---------------
    def _value_per_service_second(self, stats) -> float:
        """Predicted event value bought per worker-second spent on this camera."""
        return self._value(stats) / max(stats.service_seconds, 1e-12)

    def _compute_key(self, stats) -> tuple:
        """Ascending sort key for compute-bound shedding.

        Value per service-second: at equal density an expensive camera is
        shed first, because capping it frees more worker time per unit of
        accuracy given up.  Ties shed the higher frame rate first (more
        capacity freed), then break on id for replayable decisions.
        """
        return (self._value_per_service_second(stats), -stats.frame_rate, stats.camera_id)

    @staticmethod
    def _upload_bps(stats) -> float:
        """The camera's estimated offered upload rate in bits per second."""
        return getattr(stats, "upload_bits_per_scored_frame", 0.0) * stats.frame_rate

    def _uplink_key(self, stats) -> tuple:
        """Ascending sort key for uplink-bound shedding.

        Value per estimated uplink bit: upload-heavy low-value cameras go
        first.  Cameras uploading nothing are excluded from uplink-mode
        tightening before ranking — capping them cannot relieve the link.
        """
        upload_bps = self._upload_bps(stats)
        return (self._value(stats) / upload_bps, -upload_bps, stats.camera_id)

    def _estimated_backlog_seconds(self, node: NodeView, view: ClusterView) -> float:
        """How far the node's estimated upload bits outrun its guarantee.

        A windowed fluid-queue model, advanced one control tick at a time:
        the interval's new estimated bits arrive as ``delta / guarantee``
        transmission-seconds of work, the link drains one second per
        second, and the backlog never goes negative.  Windowing matters —
        a run-average (total bits over total time) would credit an idle
        prefix as transmission time and go blind to late-run saturation.
        """
        guarantees = view.uplink_guarantees
        if not guarantees:
            return 0.0
        guarantee = guarantees.get(node.node_id, 0.0)
        if guarantee <= 0.0:
            return 0.0
        estimate = self._uplink.setdefault(node.node_id, _NodeUplinkEstimate())
        bits = node.counter_value("uplink.estimated_bits")
        dt = max(0.0, view.now - estimate.last_time)
        delta = max(0.0, bits - estimate.last_bits)
        estimate.backlog_seconds = max(0.0, estimate.backlog_seconds + delta / guarantee - dt)
        estimate.last_bits = bits
        estimate.last_time = view.now
        return estimate.backlog_seconds

    # -- the loop body --------------------------------------------------------
    def decide(self, view: ClusterView) -> list[ControlAction]:
        """Tighten the bottlenecked nodes, relax the recovered ones."""
        config = self.config
        actions: list[ControlAction] = []
        for node in view.nodes:
            state = self._node_state(node.node_id)
            histogram = node.wait_histogram()
            window_p99 = histogram.percentile_since(99, state.wait_index)
            state.wait_index = histogram.count
            stats = node.live_stats()
            self._forget_departed(state, stats)
            backlog = self._estimated_backlog_seconds(node, view)
            inputs = {
                "window_queue_wait_p99": window_p99,
                "uplink_backlog_seconds": backlog,
                "capped_cameras": float(len(state.capped)),
            }
            candidates: tuple[CandidateScore, ...] = ()
            reason = None
            if window_p99 > config.high_watermark_seconds:
                kind = "tighten_compute"
                ranked = self._ranked_candidates(stats, self._compute_key)
                node_actions = self._tighten(node.node_id, state, ranked)
                candidates = self._ladder_candidates(
                    ranked,
                    self._value_per_service_second,
                    self._chosen_cameras(node_actions),
                )
                if not node_actions:
                    reason = "every candidate already sits at the ladder floor"
            elif backlog > config.uplink_high_watermark_seconds:
                # Only cameras actually uploading can relieve the link; a
                # zero-upload camera is never the uplink-mode victim, even
                # once every uploader sits at the bottom of the ladder.
                kind = "tighten_uplink"
                ranked = self._ranked_candidates(
                    stats, self._uplink_key, candidate=lambda s: self._upload_bps(s) > 0.0
                )
                node_actions = self._tighten(node.node_id, state, ranked)
                candidates = tuple(
                    CandidateScore(
                        candidate_id=s.camera_id,
                        score=self._value(s) / self._upload_bps(s),
                        chosen=s.camera_id in self._chosen_cameras(node_actions),
                        detail=(
                            ("upload_bps", self._upload_bps(s)),
                            ("frame_rate", s.frame_rate),
                        ),
                    )
                    for s in ranked
                )
                if not node_actions:
                    reason = (
                        "no uploading camera left to cap"
                        if not ranked
                        else "every uploading candidate already sits at the ladder floor"
                    )
            elif (
                window_p99 < config.low_watermark_seconds
                and backlog < config.uplink_low_watermark_seconds
                and state.capped
            ):
                kind = "relax"
                ranked = sorted(
                    (stats[c] for c in state.capped if c in stats),
                    key=lambda s: (-self._value_per_service_second(s), s.camera_id),
                )
                node_actions = self._relax(
                    node.node_id, state, stats, self._value_per_service_second
                )
                candidates = self._ladder_candidates(
                    ranked,
                    self._value_per_service_second,
                    self._chosen_cameras(node_actions),
                )
                if not node_actions:
                    reason = "every capped camera migrated away"
            else:
                kind = "idle"
                node_actions = []
                reason = (
                    "compute and uplink detectors inside their watermark bands"
                    if state.capped
                    else "compute and uplink detectors calm, nothing capped"
                )
            self.record_decision(
                DecisionRecord(
                    controller=self.name,
                    kind=kind,
                    node_id=node.node_id,
                    inputs=inputs,
                    gates={
                        **self._shed_gates(),
                        "uplink_high_watermark_seconds": config.uplink_high_watermark_seconds,
                        "uplink_low_watermark_seconds": config.uplink_low_watermark_seconds,
                    },
                    candidates=candidates,
                    actions=tuple(a.describe() for a in node_actions),
                    reason=reason,
                )
            )
            actions.extend(node_actions)
        return actions

    @staticmethod
    def _ranked_candidates(stats: dict, rank_key: Callable, candidate=None) -> list:
        """Cappable cameras in shed-first order.

        A camera that has not offered a single frame yet (e.g. a feed whose
        start time lies ahead) cannot relieve any pressure, and its value
        estimate is undefined — it is excluded rather than pre-emptively
        capping tomorrow's possibly-dense burst at rank 0.0 today.
        ``candidate`` adds a detector-specific filter on top.
        """
        return sorted(
            (
                s
                for s in stats.values()
                if s.generated > 0 and (candidate is None or candidate(s))
            ),
            key=rank_key,
        )


@dataclass(frozen=True)
class ThresholdDriftConfig:
    """Tuning knobs of the runtime threshold-drift policy.

    Each camera is evaluated over sequential windows of at least
    ``min_scored`` scored frames: when the windowed match density leaves
    the ``(1 ± tolerance)`` band around the windowed truth-positive rate
    of the *scored* frames (like-for-like — rating matches against the
    truth of frames the camera never scored would read active shedding as
    under-firing), the session threshold steps by ``step`` toward the leak
    (up for over-firing, down for under-firing), clamped to
    ``[min_threshold, max_threshold]``, and the camera rests for
    ``cooldown_ticks`` so each adjustment is judged on frames it actually
    influenced.
    """

    tolerance: float = 0.50
    step: float = 0.05
    min_threshold: float = 0.05
    max_threshold: float = 0.95
    min_scored: int = 16
    cooldown_ticks: int = 4

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if not 0.0 < self.step < 1.0:
            raise ValueError("step must be in (0, 1)")
        if not 0.0 < self.min_threshold < self.max_threshold < 1.0:
            raise ValueError("need 0 < min_threshold < max_threshold < 1")
        if self.min_scored < 1:
            raise ValueError("min_scored must be at least 1")
        if self.cooldown_ticks < 0:
            raise ValueError("cooldown_ticks must be non-negative")


@dataclass
class _CameraDriftState:
    """Windowed-count baselines and cooldown for one hosted camera."""

    scored: int = 0
    matched: int = 0
    generated: int = 0
    truth_positive_scored: int = 0
    attached_at: float = 0.0
    cooldown: int = 0


class ThresholdDriftController(Controller):
    """Drifts frozen per-camera thresholds toward the live event rate."""

    name = "threshold_drift"

    def __init__(self, config: ThresholdDriftConfig | None = None) -> None:
        self.config = config or ThresholdDriftConfig()
        self._cameras: dict[tuple[str, str], _CameraDriftState] = {}

    def decide(self, view: ClusterView) -> list[ControlAction]:
        """Nudge every camera whose windowed densities ran apart."""
        config = self.config
        actions: list[ControlAction] = []
        for node in view.nodes:
            node_actions: list[ControlAction] = []
            candidates: list[CandidateScore] = []
            waiting = 0
            cooling = 0
            for camera_id, stats in sorted(node.live_stats().items()):
                key = (node.node_id, camera_id)
                state = self._cameras.setdefault(key, _CameraDriftState())
                if self._stint_changed(state, stats):
                    # The camera migrated and returned: the live counters
                    # reset with the new stint, so a window spanning the old
                    # baseline would mix stints (or even go negative).
                    # Restart the window here — even mid-cooldown, where the
                    # stale baseline would otherwise survive untouched; the
                    # cooldown itself dies with the stint (the fresh session
                    # restarts from its calibrated threshold).
                    self._rebase(state, stats)
                    state.cooldown = 0
                    waiting += 1
                    continue
                if state.cooldown > 0:
                    state.cooldown -= 1
                    cooling += 1
                    continue
                # Drift needs both the oracle signal and a live threshold.
                if not stats.truth_known or stats.threshold <= 0.0:
                    continue
                window_scored = stats.scored - state.scored
                if window_scored < config.min_scored:
                    waiting += 1
                    continue
                # Both rates are over the window's *scored* frames: matches
                # can only happen on scored frames, so judging them against
                # the truth of generated-but-shed frames would read any
                # co-deployed shedding as under-firing and ratchet the
                # threshold down exactly when precision matters most.
                observed = (stats.matched - state.matched) / window_scored
                expected = (
                    stats.truth_positive_scored - state.truth_positive_scored
                ) / window_scored
                self._rebase(state, stats)
                detail = (
                    ("observed_density", observed),
                    ("expected_density", expected),
                    ("threshold", stats.threshold),
                    ("window_scored", float(window_scored)),
                )
                if observed > expected * (1.0 + config.tolerance):
                    target = min(config.max_threshold, stats.threshold + config.step)
                elif expected > 0.0 and observed < expected * (1.0 - config.tolerance):
                    target = max(config.min_threshold, stats.threshold - config.step)
                else:
                    candidates.append(
                        CandidateScore(
                            candidate_id=camera_id,
                            score=observed - expected,
                            detail=detail,
                        )
                    )
                    continue
                target = round(target, 6)
                if abs(target - stats.threshold) < 1e-9:
                    # already pinned at a clamp
                    candidates.append(
                        CandidateScore(
                            candidate_id=camera_id,
                            score=observed - expected,
                            detail=detail,
                        )
                    )
                    continue
                candidates.append(
                    CandidateScore(
                        candidate_id=camera_id,
                        score=observed - expected,
                        chosen=True,
                        detail=detail,
                    )
                )
                node_actions.append(
                    SetCameraThreshold(
                        node_id=node.node_id, camera_id=camera_id, threshold=target
                    )
                )
                state.cooldown = config.cooldown_ticks
            self.record_decision(
                DecisionRecord(
                    controller=self.name,
                    kind="drift" if node_actions else "hold",
                    node_id=node.node_id,
                    inputs={
                        "cameras_waiting": float(waiting),
                        "cameras_cooling": float(cooling),
                        "cameras_evaluated": float(len(candidates)),
                    },
                    gates={
                        "tolerance": config.tolerance,
                        "step": config.step,
                        "min_threshold": config.min_threshold,
                        "max_threshold": config.max_threshold,
                        "min_scored": config.min_scored,
                        "cooldown_ticks": config.cooldown_ticks,
                    },
                    candidates=tuple(candidates),
                    actions=tuple(a.describe() for a in node_actions),
                    reason=(
                        None
                        if node_actions
                        else "every evaluated window inside the tolerance band"
                        if candidates
                        else "no camera window ready to evaluate"
                    ),
                )
            )
            actions.extend(node_actions)
        return actions

    @staticmethod
    def _stint_changed(state: _CameraDriftState, stats) -> bool:
        """Whether the live counters belong to a newer hosting stint.

        The attach time is the exact signal; the monotonic-counter checks
        back it up for observation surfaces that do not model stints (and
        for the catch-up case where a fresh stint re-attaches at the same
        simulated time but some counter still sits below the baseline).
        """
        return (
            getattr(stats, "attached_at", 0.0) != state.attached_at
            or stats.scored < state.scored
            or stats.matched < state.matched
            or stats.generated < state.generated
            or stats.truth_positive_scored < state.truth_positive_scored
        )

    @staticmethod
    def _rebase(state: _CameraDriftState, stats) -> None:
        state.scored = stats.scored
        state.matched = stats.matched
        state.generated = stats.generated
        state.truth_positive_scored = stats.truth_positive_scored
        state.attached_at = getattr(stats, "attached_at", 0.0)
