"""Decision provenance: why every controller did (or did not) act.

The control plane's determinism contract pins *what* happened — every applied
action lands in the decision log and the JSONL trace — but a trace that only
says ``set_camera_quota node0/cam003 -> 2`` cannot answer the operational
question: which telemetry inputs did the controller read, which candidates
did it rank and with what scores, and which thresholds or hysteresis state
gated the choice?  This module adds that layer: every controller emits one
:class:`DecisionRecord` per decision context per tick — including an
*explicit no-op with a reason* — and the :class:`~repro.control.loop.ControlLoop`
threads the records (stamped with tick index, simulated time, and the global
sequence numbers of the actions each record produced) into the control trace.

A record is pure data and fully deterministic: inputs and gates are frozen
``(name, value)`` pairs, candidates carry the exact score the controller
ranked them by, and serialization (:meth:`DecisionRecord.to_dict`) is
canonical, so two same-seed runs produce byte-identical provenance and any
action in a golden trace can be replayed back to the inputs that caused it
(:func:`repro.control.trace.explain_action`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["CandidateScore", "DecisionRecord", "freeze_values"]


def freeze_values(values: Mapping[str, object] | Sequence[tuple[str, object]] | None):
    """Normalize a mapping (or pair sequence) into a sorted, hashable tuple.

    Sorting by name makes the frozen form independent of insertion order, so
    provenance serialization cannot drift when a controller reorders its
    bookkeeping code.
    """
    if values is None:
        return ()
    items = values.items() if isinstance(values, Mapping) else values
    return tuple(sorted((str(name), value) for name, value in items))


@dataclass(frozen=True)
class CandidateScore:
    """One ranked candidate (camera or node) inside a decision.

    ``score`` is the exact value the controller ordered candidates by;
    ``chosen`` marks the ones the decision actually acted on; ``detail``
    carries the per-candidate sub-signals behind the score (frame rate,
    upload bps, blackout cost, ...).
    """

    candidate_id: str
    score: float
    chosen: bool = False
    detail: tuple[tuple[str, float], ...] = ()

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (sorted detail keys)."""
        return {
            "id": self.candidate_id,
            "score": self.score,
            "chosen": self.chosen,
            "detail": dict(freeze_values(self.detail)),
        }


@dataclass(frozen=True)
class DecisionRecord:
    """One controller's decision context at one tick: inputs, ranking, outcome.

    ``kind`` names the branch the controller took (``tighten``, ``relax``,
    ``rebalance``, ``migrate``, ``drift``, ``hold``, ``idle``...); an empty
    ``actions`` tuple with a ``reason`` is an explicit no-op.  The loop stamps
    tick index, simulated time, and action sequence links at collection time
    — controllers only describe *their* side of the decision.
    """

    controller: str
    kind: str
    node_id: str | None = None
    inputs: tuple[tuple[str, float], ...] = ()
    gates: tuple[tuple[str, object], ...] = ()
    candidates: tuple[CandidateScore, ...] = ()
    actions: tuple[str, ...] = ()
    reason: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", freeze_values(self.inputs))
        object.__setattr__(self, "gates", freeze_values(self.gates))
        if not self.actions and self.reason is None:
            raise ValueError(
                f"{self.controller}/{self.kind}: a no-op decision must carry a reason"
            )

    @property
    def is_noop(self) -> bool:
        """Whether this decision produced no actions."""
        return not self.actions

    def to_dict(self) -> dict:
        """Canonical JSON-ready form; keys are stable across runs."""
        return {
            "controller": self.controller,
            "kind": self.kind,
            "node": self.node_id,
            "inputs": dict(self.inputs),
            "gates": dict(self.gates),
            "candidates": [c.to_dict() for c in self.candidates],
            "actions": list(self.actions),
            "reason": self.reason,
        }


@dataclass
class ProvenanceBuffer:
    """Per-controller staging area the loop drains once per tick."""

    records: list[DecisionRecord] = field(default_factory=list)

    def append(self, record: DecisionRecord) -> None:
        self.records.append(record)

    def drain(self) -> list[DecisionRecord]:
        drained, self.records = self.records, []
        return drained
