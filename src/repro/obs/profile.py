"""Profiling attribution: where each camera's service-seconds actually went.

Aggregates the tracer's span trees into a per-camera, per-stage breakdown —
a flamegraph collapsed to a table.  Top-level stages are the telescoping
lifecycle spans (``queue``, ``service``, ``upload_wait``, ``upload``);
``service`` further splits into the phased schedule's sub-stages
(``service/decode``, ``service/base_dnn``, …) exactly as the worker pool
charged them.

Numbers cover only *sampled* frames (the tracer's 1-in-N sample);
:attr:`FleetProfile.sample_every` is carried so readers can scale the
sampled seconds up to a fleet estimate when they need absolute magnitudes —
shares within a camera are unbiased either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import Tracer

__all__ = ["ProfileRow", "FleetProfile", "profile_from_tracer"]


@dataclass(frozen=True)
class ProfileRow:
    """Sampled seconds one camera spent in one lifecycle stage."""

    camera_id: str
    stage: str  # "queue", "service", "service/decode", "upload", ...
    seconds: float
    frames: int

    @property
    def depth(self) -> int:
        """Nesting depth of the stage (0 = top-level lifecycle stage)."""
        return self.stage.count("/")

    @property
    def leaf(self) -> str:
        """The stage's own name without its parents."""
        return self.stage.rsplit("/", 1)[-1]


class FleetProfile:
    """Per-camera, per-stage service-second attribution table."""

    def __init__(self, rows: list[ProfileRow], sample_every: int = 1) -> None:
        self.rows = list(rows)
        self.sample_every = int(sample_every)

    def cameras(self) -> list[str]:
        """Cameras with at least one profiled row, in row order."""
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.camera_id, None)
        return list(seen)

    def camera_rows(self, camera_id: str) -> list[ProfileRow]:
        """One camera's rows in stage order (parents before children)."""
        return [row for row in self.rows if row.camera_id == camera_id]

    def camera_total_seconds(self, camera_id: str) -> float:
        """Sampled end-to-end seconds of one camera (top-level stages only)."""
        return sum(row.seconds for row in self.camera_rows(camera_id) if row.depth == 0)

    def stage_totals(self) -> dict[str, float]:
        """Fleet-wide sampled seconds per stage (insertion order preserved)."""
        totals: dict[str, float] = {}
        for row in self.rows:
            totals[row.stage] = totals.get(row.stage, 0.0) + row.seconds
        return totals

    def format_table(self) -> str:
        """A flamegraph-style indented table, one block per camera."""
        lines = [
            f"per-stage attribution over sampled frames (1 in {self.sample_every})",
            f"{'camera':<10} {'stage':<24} {'seconds':>10} {'frames':>7} {'share':>7}",
        ]
        for camera_id in self.cameras():
            total = self.camera_total_seconds(camera_id)
            for row in self.camera_rows(camera_id):
                indent = "  " * row.depth
                share = row.seconds / total if total > 0 else 0.0
                lines.append(
                    f"{camera_id:<10} {indent + row.leaf:<24} "
                    f"{row.seconds:>10.4f} {row.frames:>7d} {share:>6.1%}"
                )
        return "\n".join(lines)


def profile_from_tracer(tracer: Tracer) -> FleetProfile:
    """Aggregate every frame trace into a :class:`FleetProfile`.

    Traces are walked in the tracer's deterministic order; stages appear in
    first-encounter order per camera (queue before service before upload for
    any camera that uploaded).
    """
    # camera -> stage path -> [seconds, frames]
    stages: dict[str, dict[str, list[float]]] = {}
    for trace in tracer.frame_traces():
        per_camera = stages.setdefault(trace.camera_id, {})
        root = trace.to_span()
        for child in root.children:
            _accumulate(per_camera, child.name, child)

    rows = [
        ProfileRow(camera_id=camera_id, stage=stage, seconds=acc[0], frames=int(acc[1]))
        for camera_id in sorted(stages)
        for stage, acc in stages[camera_id].items()
    ]
    return FleetProfile(rows, sample_every=tracer.sample_every)


def _accumulate(per_camera: dict[str, list[float]], path: str, span) -> None:
    acc = per_camera.setdefault(path, [0.0, 0])
    acc[0] += span.duration
    acc[1] += 1
    for child in span.children:
        _accumulate(per_camera, f"{path}/{child.name}", child)
