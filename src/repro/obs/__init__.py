"""Fleet observability plane: tracing, time series, SLOs, and profiling.

Four deterministic pillars over the fleet runtime (everything runs on the
simulated clock, so same-seed runs produce bit-identical output):

* :mod:`repro.obs.trace` — frame-lifecycle tracing: a :class:`Tracer`
  samples 1-in-N frames deterministically and records each one's
  ingest→queue→service→upload span tree, exportable as Chrome trace-event
  JSON (Perfetto-loadable);
* :mod:`repro.obs.timeline` — a :class:`MetricsTimeline` scrapes each
  node's :class:`~repro.fleet.telemetry.TelemetryRegistry` at
  control-interval boundaries into labeled series, with Prometheus
  text-exposition and JSONL exporters;
* :mod:`repro.obs.slo` — per-camera frame-freshness and end-to-end latency
  SLOs with error-budget accounting and burn-rate flags, surfaced in
  :class:`~repro.fleet.runtime.CameraLiveStats` and the fleet reports;
* :mod:`repro.obs.profile` — per-camera, per-stage service-second
  attribution aggregated from spans into a flamegraph-style table;
* :mod:`repro.obs.alerts` — declarative alert rules (threshold +
  for-duration + severity, value or rate mode, plus SLO burn-rate rules
  derived from :class:`SLOConfig` error budgets) evaluated over timeline
  samples into deterministic fire/resolve events with byte-stable JSONL;
* :mod:`repro.obs.incident` — groups overlapping alerts into incidents and
  joins them with decision provenance records, applied control actions,
  and sampled frame traces into markdown/JSON incident reports.
"""

from repro.obs.alerts import (
    ALERT_SEVERITIES,
    AlertEvent,
    AlertInterval,
    AlertLog,
    AlertRule,
    BurnRateRule,
    delivery_burn_rule,
    evaluate_alerts,
    slo_burn_rule,
)
from repro.obs.incident import (
    Incident,
    IncidentReport,
    correlate_incident,
    group_incidents,
    incident_reports,
)
from repro.obs.profile import FleetProfile, ProfileRow, profile_from_tracer
from repro.obs.slo import CameraSLOStatus, DeliverySLOConfig, SLOConfig, SLOReport, SLOTracker
from repro.obs.timeline import MetricsTimeline, TimelineSample
from repro.obs.trace import FrameTrace, NodeTracer, Span, Tracer

__all__ = [
    "ALERT_SEVERITIES",
    "AlertEvent",
    "AlertInterval",
    "AlertLog",
    "AlertRule",
    "BurnRateRule",
    "CameraSLOStatus",
    "FleetProfile",
    "DeliverySLOConfig",
    "FrameTrace",
    "Incident",
    "IncidentReport",
    "MetricsTimeline",
    "NodeTracer",
    "ProfileRow",
    "SLOConfig",
    "SLOReport",
    "SLOTracker",
    "Span",
    "TimelineSample",
    "Tracer",
    "correlate_incident",
    "delivery_burn_rule",
    "evaluate_alerts",
    "group_incidents",
    "incident_reports",
    "profile_from_tracer",
    "slo_burn_rule",
]
