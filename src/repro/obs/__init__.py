"""Fleet observability plane: tracing, time series, SLOs, and profiling.

Four deterministic pillars over the fleet runtime (everything runs on the
simulated clock, so same-seed runs produce bit-identical output):

* :mod:`repro.obs.trace` — frame-lifecycle tracing: a :class:`Tracer`
  samples 1-in-N frames deterministically and records each one's
  ingest→queue→service→upload span tree, exportable as Chrome trace-event
  JSON (Perfetto-loadable);
* :mod:`repro.obs.timeline` — a :class:`MetricsTimeline` scrapes each
  node's :class:`~repro.fleet.telemetry.TelemetryRegistry` at
  control-interval boundaries into labeled series, with Prometheus
  text-exposition and JSONL exporters;
* :mod:`repro.obs.slo` — per-camera frame-freshness and end-to-end latency
  SLOs with error-budget accounting and burn-rate flags, surfaced in
  :class:`~repro.fleet.runtime.CameraLiveStats` and the fleet reports;
* :mod:`repro.obs.profile` — per-camera, per-stage service-second
  attribution aggregated from spans into a flamegraph-style table.
"""

from repro.obs.profile import FleetProfile, ProfileRow, profile_from_tracer
from repro.obs.slo import CameraSLOStatus, SLOConfig, SLOReport, SLOTracker
from repro.obs.timeline import MetricsTimeline, TimelineSample
from repro.obs.trace import FrameTrace, NodeTracer, Span, Tracer

__all__ = [
    "CameraSLOStatus",
    "FleetProfile",
    "FrameTrace",
    "MetricsTimeline",
    "NodeTracer",
    "ProfileRow",
    "SLOConfig",
    "SLOReport",
    "SLOTracker",
    "Span",
    "TimelineSample",
    "Tracer",
    "profile_from_tracer",
]
