"""Time-series metrics: periodic scrapes of telemetry registries.

:class:`~repro.fleet.telemetry.TelemetryRegistry` is cumulative — one number
per metric at end of run.  :class:`MetricsTimeline` adds the time axis: a
driver (the control loop between ticks, or the sharded runtime's lockstep
loop) calls :meth:`MetricsTimeline.scrape` at control-interval boundaries,
and each scrape flattens one registry snapshot into a labeled
:class:`TimelineSample` (``source`` is the node id, or ``"control"`` for the
loop's own registry).  Histograms flatten to ``<name>.count`` /
``<name>.mean`` / ``<name>.p50`` / ``<name>.p99`` sub-series; gauges keep
their last value; counters pass through.

Two exporters, both deterministic:

* :meth:`to_jsonl` — one JSON object per scrape (sorted keys), the format
  analysis notebooks and diffing tools want;
* :meth:`to_prometheus` — Prometheus text exposition of the *latest* sample
  per source, each series labeled ``{node="..."}``, for dashboards that
  speak the scrape format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.fleet.telemetry import TelemetryRegistry, sanitize_metric_name

__all__ = ["TimelineSample", "MetricsTimeline"]

_HISTOGRAM_FIELDS = ("count", "mean", "p50", "p99")


@dataclass(frozen=True)
class TimelineSample:
    """One scrape of one source's registry at one simulated time."""

    time: float
    source: str
    values: dict[str, float]

    def get(self, name: str, default: float = 0.0) -> float:
        """One flattened metric value from this sample."""
        return self.values.get(name, default)


def _flatten(snapshot: dict[str, object]) -> dict[str, float]:
    """Flatten a registry snapshot into scalar series values."""
    values: dict[str, float] = {}
    for name, value in snapshot.items():
        if isinstance(value, dict):
            if "count" in value:  # histogram summary
                for fields in _HISTOGRAM_FIELDS:
                    values[f"{name}.{fields}"] = float(value[fields])
            else:  # gauge summary
                values[name] = float(value["value"])
        else:  # counter
            values[name] = float(value)
    return values


class MetricsTimeline:
    """Labeled time series built from periodic registry scrapes."""

    def __init__(self) -> None:
        self._samples: list[TimelineSample] = []

    def scrape(self, now: float, source: str, registry: TelemetryRegistry) -> TimelineSample:
        """Snapshot ``registry`` at simulated time ``now`` under ``source``."""
        sample = TimelineSample(
            time=float(now), source=str(source), values=_flatten(registry.snapshot())
        )
        self._samples.append(sample)
        return sample

    @property
    def samples(self) -> tuple[TimelineSample, ...]:
        """Every scrape in recording order."""
        return tuple(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def sources(self) -> list[str]:
        """Distinct scrape sources, sorted."""
        return sorted({s.source for s in self._samples})

    def series(self, name: str, source: str | None = None) -> list[tuple[float, float]]:
        """The ``(time, value)`` series of one metric.

        ``source=None`` requires the timeline to hold a single source;
        otherwise name the node whose series you want.  Samples missing the
        metric (e.g. before the metric first existed) are skipped.
        """
        if source is None:
            all_sources = self.sources
            if len(all_sources) > 1:
                raise ValueError(
                    f"timeline holds sources {all_sources}; pass source= to pick one"
                )
        return [
            (s.time, s.values[name])
            for s in self._samples
            if (source is None or s.source == source) and name in s.values
        ]

    def latest(self, source: str) -> TimelineSample | None:
        """The most recent sample of one source (None if never scraped)."""
        for sample in reversed(self._samples):
            if sample.source == source:
                return sample
        return None

    def metric_names(self) -> list[str]:
        """Every flattened series name seen across all samples, sorted."""
        names: set[str] = set()
        for sample in self._samples:
            names.update(sample.values)
        return sorted(names)

    # -- exporters -------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per scrape, keys sorted — byte-stable across runs."""
        return "\n".join(
            json.dumps(
                {"t": sample.time, "source": sample.source, "values": sample.values},
                sort_keys=True,
                separators=(",", ":"),
            )
            for sample in self._samples
        )

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the JSONL dump to ``path`` and return it."""
        path = Path(path)
        text = self.to_jsonl()
        path.write_text(text + "\n" if text else "", encoding="utf-8")
        return path

    def to_prometheus(self) -> str:
        """Prometheus text exposition of each source's latest sample.

        Series are grouped per metric with one ``HELP``/``TYPE`` header and
        one ``{node="..."}``-labeled line per source.  Types are ``untyped``
        because flattened sub-series (histogram ``.count``/``.p99``) have no
        single native Prometheus type.
        """
        latest = {source: self.latest(source) for source in self.sources}
        lines: list[str] = []
        for name in self.metric_names():
            metric = sanitize_metric_name(name)
            emitted_header = False
            for source in self.sources:
                sample = latest[source]
                if sample is None or name not in sample.values:
                    continue
                if not emitted_header:
                    lines.append(f"# HELP {metric} Timeline series for telemetry {name!r}.")
                    lines.append(f"# TYPE {metric} untyped")
                    emitted_header = True
                lines.append(f'{metric}{{node="{source}"}} {sample.values[name]:.10g}')
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: str | Path) -> Path:
        """Write the Prometheus exposition to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_prometheus(), encoding="utf-8")
        return path
