"""Per-camera latency SLOs: freshness, end-to-end latency, error budgets.

"Timeliness" is the central concern of real-time edge analytics, but drop
rates are only a proxy for it — a camera can lose few frames yet score every
one of them seconds late.  This module measures it directly with two
service-level indicators per camera:

* **freshness** — over *all generated frames*: a frame is fresh iff it was
  scored within ``freshness_target_seconds`` of its capture.  Shed frames
  (queue drops, admission rejections, migration losses, blackouts) are never
  fresh, so freshness unifies loss and lateness into one number;
* **latency** — over *scored frames only*: the fraction whose end-to-end
  ingest→scored latency met ``latency_target_seconds``.

The SLO *objective* is the fraction of frames that must be fresh (e.g.
0.95).  Error-budget accounting follows the SRE convention: with ``n``
frames observed, the budget is ``(1 - objective) * n`` violations; spending
past it drives :attr:`CameraSLOStatus.error_budget_remaining` negative.  The
*burn rate* is the violation fraction over a sliding window of the last
``burn_window`` frames divided by the allowed fraction — 1.0 burns the
budget exactly at the sustainable rate, and a camera whose burn rate exceeds
``burn_alert`` is flagged :attr:`~CameraSLOStatus.burning` (the signal a
shedding controller should react to *now*, not at end of run).

Everything is driven by the simulated clock, so SLO reports are
deterministic and bit-identical across same-seed runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["SLOConfig", "CameraSLOStatus", "DeliverySLOConfig", "SLOTracker", "SLOReport"]


@dataclass(frozen=True)
class SLOConfig:
    """Targets and budget policy for the per-camera latency SLOs."""

    freshness_target_seconds: float = 0.5
    latency_target_seconds: float = 0.25
    objective: float = 0.95
    burn_window: int = 64
    burn_alert: float = 2.0

    def __post_init__(self) -> None:
        if self.freshness_target_seconds <= 0:
            raise ValueError("freshness_target_seconds must be positive")
        if self.latency_target_seconds <= 0:
            raise ValueError("latency_target_seconds must be positive")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.burn_window < 1:
            raise ValueError("burn_window must be at least 1")
        if self.burn_alert <= 0:
            raise ValueError("burn_alert must be positive")


@dataclass(frozen=True)
class DeliverySLOConfig:
    """Objective for end-to-end *event delivery*, the datacenter-side SLO.

    An event record meets the SLO iff its delivery latency — first
    successful datacenter ingest completion minus the event's close time —
    is at most ``ack_latency_seconds``.  ``objective`` is the fraction of
    published records that must meet it; ``burn_alert`` is the burn-rate
    threshold at which :func:`repro.obs.alerts.delivery_burn_rule` pages
    (same convention as :class:`SLOConfig`).
    """

    ack_latency_seconds: float = 1.0
    objective: float = 0.99
    burn_alert: float = 2.0

    def __post_init__(self) -> None:
        if self.ack_latency_seconds <= 0:
            raise ValueError("ack_latency_seconds must be positive")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.burn_alert <= 0:
            raise ValueError("burn_alert must be positive")


@dataclass(frozen=True)
class CameraSLOStatus:
    """One camera's SLO standing (point-in-time or end-of-run).

    Raw counts are kept so statuses merge exactly across a migrated
    camera's hosting stints; the window-derived burn fields merge
    conservatively (worst stint wins).
    """

    camera_id: str
    objective: float
    frames: int
    fresh: int
    scored: int
    within_latency: int
    burn_rate: float
    burning: bool

    @property
    def fresh_fraction(self) -> float:
        """Fraction of generated frames scored within the freshness target."""
        return self.fresh / self.frames if self.frames else 1.0

    @property
    def latency_fraction(self) -> float:
        """Fraction of scored frames inside the end-to-end latency target."""
        return self.within_latency / self.scored if self.scored else 1.0

    @property
    def meets_objective(self) -> bool:
        """Whether the freshness SLI currently meets the objective."""
        return self.fresh_fraction >= self.objective

    @property
    def error_budget_remaining(self) -> float:
        """Unspent fraction of the violation budget (negative = overspent)."""
        allowed = (1.0 - self.objective) * self.frames
        violations = self.frames - self.fresh
        if allowed <= 0.0:
            return 1.0 if violations == 0 else 0.0
        return 1.0 - violations / allowed

    def merged_with(self, other: "CameraSLOStatus") -> "CameraSLOStatus":
        """Combine two hosting stints of the same camera."""
        if other.camera_id != self.camera_id:
            raise ValueError(
                f"cannot merge SLO status of {other.camera_id!r} into {self.camera_id!r}"
            )
        if other.objective != self.objective:
            raise ValueError("cannot merge SLO statuses with different objectives")
        return CameraSLOStatus(
            camera_id=self.camera_id,
            objective=self.objective,
            frames=self.frames + other.frames,
            fresh=self.fresh + other.fresh,
            scored=self.scored + other.scored,
            within_latency=self.within_latency + other.within_latency,
            burn_rate=max(self.burn_rate, other.burn_rate),
            burning=self.burning or other.burning,
        )


class _CameraSLO:
    """Mutable per-camera accounting behind :class:`SLOTracker`."""

    def __init__(self, camera_id: str, config: SLOConfig) -> None:
        self.camera_id = camera_id
        self.config = config
        self.frames = 0
        self.fresh = 0
        self.scored = 0
        self.within_latency = 0
        self._window: deque[bool] = deque(maxlen=config.burn_window)

    def record_scored(self, latency_seconds: float) -> tuple[bool, bool]:
        """Account one scored frame; returns ``(fresh, within_latency)``."""
        self.frames += 1
        self.scored += 1
        fresh = latency_seconds <= self.config.freshness_target_seconds
        within = latency_seconds <= self.config.latency_target_seconds
        if fresh:
            self.fresh += 1
        if within:
            self.within_latency += 1
        self._window.append(fresh)
        return fresh, within

    def record_lost(self, count: int = 1) -> None:
        """Account ``count`` frames that will never be scored (never fresh)."""
        self.frames += count
        for _ in range(min(count, self.config.burn_window)):
            self._window.append(False)

    @property
    def burn_rate(self) -> float:
        """Windowed violation rate over the sustainable rate."""
        if not self._window:
            return 0.0
        violation_fraction = self._window.count(False) / len(self._window)
        return violation_fraction / (1.0 - self.config.objective)

    def status(self) -> CameraSLOStatus:
        """Freeze the camera's current standing."""
        burn_rate = self.burn_rate
        return CameraSLOStatus(
            camera_id=self.camera_id,
            objective=self.config.objective,
            frames=self.frames,
            fresh=self.fresh,
            scored=self.scored,
            within_latency=self.within_latency,
            burn_rate=burn_rate,
            burning=burn_rate >= self.config.burn_alert,
        )


class SLOTracker:
    """Per-node SLO accounting the fleet runtime feeds frame by frame."""

    def __init__(self, config: SLOConfig) -> None:
        self.config = config
        self._cameras: dict[str, _CameraSLO] = {}

    def _camera(self, camera_id: str) -> _CameraSLO:
        if camera_id not in self._cameras:
            self._cameras[camera_id] = _CameraSLO(camera_id, self.config)
        return self._cameras[camera_id]

    def record_scored(self, camera_id: str, latency_seconds: float) -> tuple[bool, bool]:
        """Account one scored frame; returns ``(fresh, within_latency)``."""
        return self._camera(camera_id).record_scored(latency_seconds)

    def record_lost(self, camera_id: str, count: int = 1) -> None:
        """Account frames shed before scoring (drops, rejections, blackouts)."""
        if count > 0:
            self._camera(camera_id).record_lost(count)

    def camera_status(self, camera_id: str) -> CameraSLOStatus | None:
        """One camera's current standing (None if it has no frames yet)."""
        camera = self._cameras.get(camera_id)
        return camera.status() if camera is not None else None

    def report(self) -> "SLOReport":
        """Freeze every camera's standing into a report (camera-id order)."""
        return SLOReport(
            config=self.config,
            cameras=tuple(
                self._cameras[camera_id].status() for camera_id in sorted(self._cameras)
            ),
        )


@dataclass(frozen=True)
class SLOReport:
    """Fleet- or node-level SLO standing over every observed camera."""

    config: SLOConfig
    cameras: tuple[CameraSLOStatus, ...]

    @property
    def frames(self) -> int:
        """Frames observed across all cameras."""
        return sum(c.frames for c in self.cameras)

    @property
    def fresh_fraction(self) -> float:
        """Fleet-wide freshness SLI (frame-weighted)."""
        frames = self.frames
        return sum(c.fresh for c in self.cameras) / frames if frames else 1.0

    @property
    def latency_fraction(self) -> float:
        """Fleet-wide scored-latency SLI (frame-weighted)."""
        scored = sum(c.scored for c in self.cameras)
        return sum(c.within_latency for c in self.cameras) / scored if scored else 1.0

    @property
    def cameras_burning(self) -> int:
        """Cameras whose burn rate exceeds the alert threshold."""
        return sum(1 for c in self.cameras if c.burning)

    @property
    def cameras_missing_objective(self) -> int:
        """Cameras whose freshness SLI is below the objective."""
        return sum(1 for c in self.cameras if not c.meets_objective)

    def camera(self, camera_id: str) -> CameraSLOStatus | None:
        """One camera's status by id (None if absent)."""
        for status in self.cameras:
            if status.camera_id == camera_id:
                return status
        return None

    def summary(self) -> str:
        """A one-line human-readable SLO standing."""
        return (
            f"slo: fresh {self.fresh_fraction:.1%} of frames "
            f"(target <= {self.config.freshness_target_seconds:.2f}s, "
            f"objective {self.config.objective:.0%}) | "
            f"scored latency {self.latency_fraction:.1%} <= "
            f"{self.config.latency_target_seconds:.2f}s | "
            f"{self.cameras_missing_objective}/{len(self.cameras)} cameras below objective, "
            f"{self.cameras_burning} burning"
        )

    @staticmethod
    def merged(reports) -> "SLOReport | None":
        """Fold per-node reports into one cluster report (None when empty).

        A camera hosted by several nodes (migration) contributes one merged
        status covering all its stints.
        """
        reports = [r for r in reports if r is not None]
        if not reports:
            return None
        config = reports[0].config
        for report in reports[1:]:
            if report.config != config:
                raise ValueError("cannot merge SLO reports with different configs")
        merged: dict[str, CameraSLOStatus] = {}
        for report in reports:
            for status in report.cameras:
                previous = merged.get(status.camera_id)
                merged[status.camera_id] = (
                    status if previous is None else previous.merged_with(status)
                )
        return SLOReport(
            config=config,
            cameras=tuple(merged[camera_id] for camera_id in sorted(merged)),
        )
