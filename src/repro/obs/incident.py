"""Incident correlation: alerts joined with the decisions behind them.

An alert says a symptom crossed a line; a decision record says what the
control plane saw and did.  This module joins the two: overlapping
:class:`~repro.obs.alerts.AlertInterval`\\ s group into :class:`Incident`\\ s
(:func:`group_incidents`), and :func:`correlate_incident` pulls everything
that happened inside an incident's window — decision provenance records,
applied control-log actions, and sampled frame traces — into one
:class:`IncidentReport` with deterministic markdown and JSON renderings:
"uplink burn-rate fired on node1 → value_shedding ranked cam017, cam031 →
migration held for cooldown", straight from one run's artifacts.

Everything here is duck-typed over plain data — decision records are the
JSON-ready dicts :class:`~repro.control.loop.ControlLoop` emits, control-log
entries are the ``t=<seconds> <controller>: <action>`` strings, and frame
traces only need ``arrival``/``end`` — so the module (and the
``tools/fleetctl.py`` CLI built on it) works identically on live reports
and on artifacts re-loaded from disk.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.obs.alerts import AlertInterval, AlertLog

__all__ = [
    "Incident",
    "IncidentReport",
    "group_incidents",
    "correlate_incident",
    "incident_reports",
]

_SEVERITY_ORDER = {"info": 0, "warn": 1, "page": 2}
_ACTION_TIME = re.compile(r"^t=([0-9.]+)\s")


@dataclass(frozen=True)
class Incident:
    """One group of time-overlapping alert intervals."""

    incident_id: str
    alerts: tuple[AlertInterval, ...]
    start: float
    end: float | None  # None = at least one alert never resolved

    @property
    def severity(self) -> str:
        """The worst severity among the grouped alerts."""
        return max(
            (a.severity for a in self.alerts),
            key=lambda s: _SEVERITY_ORDER.get(s, -1),
            default="info",
        )

    @property
    def sources(self) -> list[str]:
        """Distinct alerting sources, sorted."""
        return sorted({a.source for a in self.alerts})

    def window(self, horizon: float | None = None) -> tuple[float, float]:
        """The incident's closed time window; open ends clamp to ``horizon``."""
        end = self.end
        if end is None:
            end = horizon if horizon is not None else float("inf")
        return (self.start, end)


def group_incidents(alerts: AlertLog | Sequence[AlertInterval]) -> list[Incident]:
    """Merge time-overlapping alert intervals into incidents.

    Intervals are unioned transitively: A overlapping B and B overlapping C
    puts all three in one incident even if A and C never overlap.  Incident
    ids are ``INC-001``... in start order, so two identical runs name their
    incidents identically.
    """
    intervals = alerts.intervals() if isinstance(alerts, AlertLog) else list(alerts)
    intervals = sorted(intervals, key=lambda i: (i.start, i.rule, i.source))
    groups: list[list[AlertInterval]] = []
    for interval in intervals:
        if groups and any(interval.overlaps(member) for member in groups[-1]):
            groups[-1].append(interval)
        else:
            groups.append([interval])
    incidents: list[Incident] = []
    for index, group in enumerate(groups, 1):
        ends = [member.end for member in group]
        incidents.append(
            Incident(
                incident_id=f"INC-{index:03d}",
                alerts=tuple(group),
                start=min(member.start for member in group),
                end=None if any(end is None for end in ends) else max(ends),
            )
        )
    return incidents


@dataclass(frozen=True)
class IncidentReport:
    """One incident joined with everything the run did inside its window."""

    incident: Incident
    decisions: tuple[dict, ...] = ()
    actions: tuple[str, ...] = ()
    traces: tuple[object, ...] = ()

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (frame traces reduce to counts)."""
        end = self.incident.end
        return {
            "id": self.incident.incident_id,
            "severity": self.incident.severity,
            "start": self.incident.start,
            "end": end,
            "sources": self.incident.sources,
            "alerts": [
                {
                    "rule": a.rule,
                    "source": a.source,
                    "severity": a.severity,
                    "start": a.start,
                    "end": a.end,
                }
                for a in self.incident.alerts
            ],
            "decisions": [dict(d) for d in self.decisions],
            "actions": list(self.actions),
            "sampled_frames": len(self.traces),
        }

    def to_markdown(self) -> str:
        """A deterministic human-readable incident writeup."""
        incident = self.incident
        end = "unresolved" if incident.end is None else f"t={incident.end:.3f}"
        lines = [
            f"## {incident.incident_id} [{incident.severity}] "
            f"t={incident.start:.3f} .. {end}",
            "",
            "### Alerts",
        ]
        for alert in incident.alerts:
            until = "unresolved" if alert.end is None else f"{alert.end:.3f}"
            lines.append(
                f"- `{alert.rule}` on `{alert.source}` [{alert.severity}] "
                f"fired t={alert.start:.3f}, resolved {until}"
            )
        lines.append("")
        lines.append("### Control decisions in window")
        if not self.decisions:
            lines.append("- none recorded")
        for decision in self.decisions:
            where = decision.get("node") or "cluster"
            head = (
                f"- t={decision.get('t', 0.0):.3f} `{decision.get('controller')}`/"
                f"{decision.get('kind')} on `{where}`"
            )
            acts = decision.get("actions") or []
            if acts:
                head += ": " + "; ".join(acts)
            elif decision.get("reason"):
                head += f" — {decision['reason']}"
            lines.append(head)
            candidates = decision.get("candidates") or []
            if candidates:
                ranked = ", ".join(
                    f"{c.get('id')}={c.get('score'):.4g}"
                    + ("*" if c.get("chosen") else "")
                    for c in candidates[:6]
                )
                more = f" (+{len(candidates) - 6} more)" if len(candidates) > 6 else ""
                lines.append(f"  - candidates: {ranked}{more} (* = chosen)")
            inputs = decision.get("inputs") or {}
            if inputs:
                lines.append(
                    "  - inputs: "
                    + ", ".join(f"{k}={v:.4g}" for k, v in sorted(inputs.items()))
                )
        lines.append("")
        lines.append("### Applied actions in window")
        if not self.actions:
            lines.append("- none")
        for action in self.actions:
            lines.append(f"- {action}")
        if self.traces:
            lines.append("")
            lines.append(f"### Sampled frames in window: {len(self.traces)}")
        return "\n".join(lines) + "\n"


def _action_time(entry: str) -> float | None:
    match = _ACTION_TIME.match(entry)
    return float(match.group(1)) if match else None


def correlate_incident(
    incident: Incident,
    decision_records: Sequence[dict] = (),
    control_log: Sequence[str] = (),
    frame_traces: Sequence[object] = (),
    horizon: float | None = None,
    slack_seconds: float = 0.0,
) -> IncidentReport:
    """Join one incident with the run data inside its (padded) window.

    ``slack_seconds`` widens the window on both sides — the decision that
    *caused* an alert often lands one control tick before the alert's first
    breached scrape.  Frame traces join on overlap: a frame whose
    ``arrival``..``end`` span touches the window counts.
    """
    start, end = incident.window(horizon)
    start -= slack_seconds
    end += slack_seconds
    decisions = tuple(
        record
        for record in decision_records
        if start <= record.get("t", 0.0) <= end
    )
    actions = tuple(
        entry
        for entry in control_log
        if (t := _action_time(entry)) is not None and start <= t <= end
    )
    traces = tuple(
        trace
        for trace in frame_traces
        if getattr(trace, "arrival", None) is not None
        and trace.arrival <= end
        and getattr(trace, "end", trace.arrival) >= start
    )
    return IncidentReport(
        incident=incident, decisions=decisions, actions=actions, traces=traces
    )


def incident_reports(
    alerts: AlertLog,
    decision_records: Sequence[dict] = (),
    control_log: Sequence[str] = (),
    frame_traces: Sequence[object] = (),
    horizon: float | None = None,
    slack_seconds: float = 0.0,
) -> list[IncidentReport]:
    """Group, correlate, and report every incident of one run."""
    return [
        correlate_incident(
            incident,
            decision_records=decision_records,
            control_log=control_log,
            frame_traces=frame_traces,
            horizon=horizon,
            slack_seconds=slack_seconds,
        )
        for incident in group_incidents(alerts)
    ]
