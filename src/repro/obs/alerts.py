"""Declarative alerting over metric timelines: threshold, duration, burn rate.

The :class:`~repro.obs.timeline.MetricsTimeline` gives every run a time
axis; this module adds the operator's layer on top — *rules* evaluated at
each scrape (control-interval boundaries), producing deterministic
fire/resolve :class:`AlertEvent`\\ s.  Two rule families ship:

* :class:`AlertRule` — compare one flattened timeline metric against a
  threshold, either its raw value (``mode="value"``) or its per-second
  rate of change between consecutive scrapes (``mode="rate"`` — what a
  monotonic counter such as ``uplink.estimated_bits`` needs to both fire
  and resolve);
* :class:`BurnRateRule` — the SRE error-budget view derived from
  :class:`~repro.obs.slo.SLOConfig`: windowed SLO violations over windowed
  frames, divided by the allowed violation fraction ``1 - objective``.
  :func:`slo_burn_rule` builds one straight from a config, inheriting its
  ``burn_alert`` threshold.

Rules carry *for-duration* hysteresis (``for_seconds``): the condition must
hold continuously that long before the alert fires, so a metric flapping
around the threshold between scrapes never pages.  Evaluation
(:func:`evaluate_alerts`) is a pure function of the timeline — same samples,
same rules, byte-identical :meth:`AlertLog.to_jsonl` — and the resulting
:class:`AlertLog` is surfaced on :class:`~repro.fleet.runtime.FleetReport`
and :class:`~repro.fleet.sharding.ShardedFleetReport`, and consumed by
:mod:`repro.obs.incident` for incident grouping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.obs.slo import DeliverySLOConfig, SLOConfig
from repro.obs.timeline import MetricsTimeline, TimelineSample

__all__ = [
    "ALERT_SEVERITIES",
    "AlertRule",
    "BurnRateRule",
    "slo_burn_rule",
    "delivery_burn_rule",
    "AlertEvent",
    "AlertInterval",
    "AlertLog",
    "evaluate_alerts",
]

ALERT_SEVERITIES = ("info", "warn", "page")
_OPS = ("gt", "ge", "lt", "le")
_MODES = ("value", "rate")


def _check_common(name: str, severity: str, for_seconds: float) -> None:
    if not name:
        raise ValueError("rule name must be non-empty")
    if severity not in ALERT_SEVERITIES:
        raise ValueError(
            f"Unknown severity {severity!r}; expected one of {ALERT_SEVERITIES}"
        )
    if for_seconds < 0:
        raise ValueError("for_seconds must be non-negative")


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule over a flattened timeline metric.

    ``mode="value"`` compares the metric's sampled value; ``mode="rate"``
    compares its per-second delta between this scrape and the source's
    previous one (the first scrape of a source has no rate and is skipped,
    and a counter restart — negative delta, e.g. after a migration's
    detach/attach — is clamped to zero rate rather than reported negative).
    Empty ``sources`` means the rule watches every scraped source.
    """

    name: str
    metric: str
    threshold: float
    op: str = "gt"
    for_seconds: float = 0.0
    severity: str = "warn"
    mode: str = "value"
    sources: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_common(self.name, self.severity, self.for_seconds)
        if self.op not in _OPS:
            raise ValueError(f"Unknown op {self.op!r}; expected one of {_OPS}")
        if self.mode not in _MODES:
            raise ValueError(f"Unknown mode {self.mode!r}; expected one of {_MODES}")

    def evaluate(
        self, history: Sequence[TimelineSample], sample: TimelineSample
    ) -> float | None:
        """The value this rule judges at ``sample`` (None = no data yet)."""
        if self.metric not in sample.values:
            return None
        if self.mode == "value":
            return sample.values[self.metric]
        for previous in reversed(history):
            if self.metric in previous.values:
                dt = sample.time - previous.time
                if dt <= 0:
                    return None
                delta = sample.values[self.metric] - previous.values[self.metric]
                # Rate rules watch monotonic counters; a negative delta means
                # the counter restarted (camera detach/attach during a
                # migration re-creates per-camera series from zero).  Clamp
                # the restart sample to zero rate instead of reporting a
                # large negative rate that spuriously resolves (op=gt) or
                # fires (op=lt) the alert.
                return max(0.0, delta) / dt
        return None

    def breached(self, value: float) -> bool:
        """Whether ``value`` violates the threshold."""
        if self.op == "gt":
            return value > self.threshold
        if self.op == "ge":
            return value >= self.threshold
        if self.op == "lt":
            return value < self.threshold
        return value <= self.threshold


@dataclass(frozen=True)
class BurnRateRule:
    """Error-budget burn rate over a sliding simulated-time window.

    Burn is the windowed violation fraction over the allowed fraction:
    ``(Δviolations / Δframes) / (1 - objective)`` where the deltas span
    ``window_seconds`` of timeline history (counters before the run start
    are zero).  A window with no new frames burns nothing — a camera with
    zero budget consumed never fires.  Burn > ``threshold`` breaches; 1.0
    spends the budget exactly at the sustainable rate.
    """

    name: str
    objective: float
    threshold: float
    window_seconds: float
    violations_metric: str = "slo.freshness_violations"
    frames_metric: str = "frames.generated"
    for_seconds: float = 0.0
    severity: str = "page"
    sources: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_common(self.name, self.severity, self.for_seconds)
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")

    def evaluate(
        self, history: Sequence[TimelineSample], sample: TimelineSample
    ) -> float | None:
        """The burn rate at ``sample`` (None before the metrics exist)."""
        if self.frames_metric not in sample.values:
            return None
        base_frames = 0.0
        base_violations = 0.0
        cutoff = sample.time - self.window_seconds
        for previous in reversed(history):
            if previous.time >= cutoff:
                continue
            base_frames = previous.values.get(self.frames_metric, 0.0)
            base_violations = previous.values.get(self.violations_metric, 0.0)
            break
        frames = sample.values[self.frames_metric] - base_frames
        if frames <= 0:
            return 0.0
        violations = sample.values.get(self.violations_metric, 0.0) - base_violations
        return (violations / frames) / (1.0 - self.objective)

    def breached(self, value: float) -> bool:
        """Whether the burn rate exceeds the allowed multiple."""
        return value > self.threshold


def slo_burn_rule(
    config: SLOConfig,
    window_seconds: float = 2.0,
    name: str = "slo_freshness_burn",
    for_seconds: float = 0.0,
    severity: str = "page",
    sources: Sequence[str] = (),
) -> BurnRateRule:
    """A freshness burn-rate rule derived from one SLO config.

    Inherits the config's ``objective`` and its ``burn_alert`` multiple, so
    the timeline-side alert agrees with the runtime's per-camera
    :attr:`~repro.obs.slo.CameraSLOStatus.burning` flag about what "too
    fast" means.
    """
    return BurnRateRule(
        name=name,
        objective=config.objective,
        threshold=config.burn_alert,
        window_seconds=window_seconds,
        for_seconds=for_seconds,
        severity=severity,
        sources=tuple(sources),
    )


def delivery_burn_rule(
    config: DeliverySLOConfig,
    window_seconds: float = 2.0,
    name: str = "events_ack_latency_burn",
    for_seconds: float = 0.0,
    severity: str = "page",
    sources: Sequence[str] = (),
) -> BurnRateRule:
    """An ack-latency burn-rate rule for the event delivery plane.

    Burns when published event records miss the delivery SLO
    (``events.ack_violations`` — delivered too late, or never) faster than
    ``(1 - objective) * burn_alert`` of the publish rate
    (``events.published``) allows.  Pair with an
    :class:`~repro.events.plane.EventDeliveryPlane` configured with the
    same :class:`~repro.obs.slo.DeliverySLOConfig` so the counters exist.
    """
    return BurnRateRule(
        name=name,
        objective=config.objective,
        threshold=config.burn_alert,
        window_seconds=window_seconds,
        for_seconds=for_seconds,
        severity=severity,
        sources=tuple(sources),
        violations_metric="events.ack_violations",
        frames_metric="events.published",
    )


@dataclass(frozen=True)
class AlertEvent:
    """One state transition of one rule on one source."""

    time: float
    rule: str
    source: str
    state: str  # "firing" | "resolved"
    severity: str
    value: float
    threshold: float

    def to_dict(self) -> dict:
        """Canonical JSON-ready form."""
        return {
            "t": self.time,
            "rule": self.rule,
            "source": self.source,
            "state": self.state,
            "severity": self.severity,
            "value": self.value,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class AlertInterval:
    """One contiguous firing stretch of one rule on one source."""

    rule: str
    source: str
    severity: str
    start: float
    end: float | None  # None = still firing at end of run

    @property
    def resolved(self) -> bool:
        """Whether the alert resolved before the run ended."""
        return self.end is not None

    def overlaps(self, other: "AlertInterval") -> bool:
        """Whether two intervals share any instant (open-ended = forever)."""
        self_end = float("inf") if self.end is None else self.end
        other_end = float("inf") if other.end is None else other.end
        return self.start <= other_end and other.start <= self_end


@dataclass(frozen=True)
class AlertLog:
    """Every alert transition of one run, in deterministic order."""

    events: tuple[AlertEvent, ...] = ()

    def __len__(self) -> int:
        return len(self.events)

    @property
    def fired(self) -> int:
        """Count of firing transitions."""
        return sum(1 for e in self.events if e.state == "firing")

    @property
    def active(self) -> list[tuple[str, str]]:
        """``(rule, source)`` pairs still firing after the last event."""
        state: dict[tuple[str, str], bool] = {}
        for event in self.events:
            state[(event.rule, event.source)] = event.state == "firing"
        return sorted(key for key, firing in state.items() if firing)

    def intervals(self) -> list[AlertInterval]:
        """Pair firing/resolved events into intervals (start order)."""
        open_events: dict[tuple[str, str], AlertEvent] = {}
        intervals: list[AlertInterval] = []
        for event in self.events:
            key = (event.rule, event.source)
            if event.state == "firing":
                open_events[key] = event
            elif key in open_events:
                fired = open_events.pop(key)
                intervals.append(
                    AlertInterval(
                        rule=fired.rule,
                        source=fired.source,
                        severity=fired.severity,
                        start=fired.time,
                        end=event.time,
                    )
                )
        for fired in open_events.values():
            intervals.append(
                AlertInterval(
                    rule=fired.rule,
                    source=fired.source,
                    severity=fired.severity,
                    start=fired.time,
                    end=None,
                )
            )
        return sorted(intervals, key=lambda i: (i.start, i.rule, i.source))

    def summary(self) -> str:
        """A one-line human-readable alert standing."""
        if not self.events:
            return "alerts: none fired"
        return (
            f"alerts: {self.fired} fired, "
            f"{self.fired - len(self.active)} resolved, "
            f"{len(self.active)} still firing"
        )

    # -- exporters -------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per event, sorted keys — byte-stable across runs."""
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
            for event in self.events
        )

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the JSONL dump to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path


def evaluate_alerts(timeline: MetricsTimeline, rules: Sequence) -> AlertLog:
    """Run every rule over the timeline and return the transition log.

    A pure function of the samples: per ``(rule, source)`` the rule's value
    is judged at each of the source's scrapes in time order; a breach must
    hold continuously for the rule's ``for_seconds`` before the alert fires,
    and the first non-breach sample after a fire resolves it.  Samples where
    the rule has no data (metric absent, no previous scrape for a rate)
    leave both the pending timer and the firing state untouched.  Events are
    globally ordered by ``(time, rule, source, state)``.
    """
    by_source: dict[str, list[TimelineSample]] = {}
    for sample in timeline.samples:
        by_source.setdefault(sample.source, []).append(sample)
    events: list[AlertEvent] = []
    for rule in rules:
        sources = list(rule.sources) if rule.sources else sorted(by_source)
        for source in sources:
            history: list[TimelineSample] = []
            pending_since: float | None = None
            firing = False
            for sample in by_source.get(source, []):
                value = rule.evaluate(history, sample)
                history.append(sample)
                if value is None:
                    continue
                if rule.breached(value):
                    if firing:
                        continue
                    if pending_since is None:
                        pending_since = sample.time
                    if sample.time - pending_since >= rule.for_seconds:
                        firing = True
                        events.append(
                            AlertEvent(
                                time=sample.time,
                                rule=rule.name,
                                source=source,
                                state="firing",
                                severity=rule.severity,
                                value=value,
                                threshold=rule.threshold,
                            )
                        )
                else:
                    pending_since = None
                    if firing:
                        firing = False
                        events.append(
                            AlertEvent(
                                time=sample.time,
                                rule=rule.name,
                                source=source,
                                state="resolved",
                                severity=rule.severity,
                                value=value,
                                threshold=rule.threshold,
                            )
                        )
    events.sort(key=lambda e: (e.time, e.rule, e.source, e.state))
    return AlertLog(events=tuple(events))
