"""Frame-lifecycle tracing: deterministic span trees per sampled frame.

A :class:`Tracer` follows individual frames through the fleet runtime —
ingest, admission, queueing, the phased service schedule, and the uplink —
and records each one's lifecycle as a tree of :class:`Span`\\ s.  Tracing
every frame would dominate the simulation, so frames are *sampled*
deterministically: a frame is traced iff
``crc32(f"{camera_id}/{frame_index}") % sample_every == 0``.  The key uses
only stable identifiers (never object ids or wall-clock), so two runs with
the same seed trace exactly the same frames and produce bit-identical
output, and a frame keeps its sampling decision across a migration.

Span trees *telescope*: a traced frame's top-level children partition the
root interval (``queue`` ends where ``service`` starts, ``service`` ends
where ``upload_wait`` starts, …), so queue + service + uplink spans sum to
the frame's full ingest→upload latency by construction.  The per-stage
service sub-spans (decode / base DNN / MC batches) come from the worker
pool's :class:`~repro.edge.scheduler.PhasedSchedule`.

Export is Chrome trace-event JSON (``ph``/``ts``/``dur``/``pid``/``tid``),
loadable in ``chrome://tracing`` or Perfetto: one *process* per edge node,
one *thread* per camera, one complete ``X`` event per span plus instant
(``i``) events for admission decisions and drops.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Span", "FrameTrace", "NodeTracer", "Tracer"]

# Trace-event timestamps are microseconds; round to 1e-3 us (ns) so the
# JSON stays tidy while remaining exact for simulated times.
_US_PER_SECOND = 1e6


def _us(seconds: float) -> float:
    """Seconds on the simulated clock -> trace-event microseconds."""
    return round(seconds * _US_PER_SECOND, 3)


@dataclass(frozen=True)
class Span:
    """One timed interval of a frame's lifecycle (children nest inside)."""

    name: str
    category: str
    start: float
    end: float
    children: tuple["Span", ...] = ()
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"Span {self.name!r} ends before it starts")

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.start

    def walk(self):
        """Yield this span, then every descendant depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class FrameTrace:
    """Mutable lifecycle record of one sampled frame on one node.

    The runtime fills fields in as events happen; :meth:`to_span` freezes
    the record into a telescoping span tree at export time.  A frame that
    was dropped simply never gets the later fields — the tree degrades
    gracefully (queue-only for an evicted frame, an instant for a frame
    rejected at the door).
    """

    camera_id: str
    frame_index: int
    arrival: float
    admitted: bool | None = None
    enqueued: bool = False
    enqueue_depth: int | None = None
    dispatched_at: float | None = None
    phases: tuple[tuple[str, float, float], ...] = ()
    completed_at: float | None = None
    dropped_at: float | None = None
    drop_reason: str | None = None
    upload_description: str | None = None
    upload_available_at: float | None = None
    upload_start: float | None = None
    upload_end: float | None = None
    annotations: dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """When this frame's lifecycle ended (arrival if it never started)."""
        if self.upload_end is not None:
            return self.upload_end
        if self.completed_at is not None:
            return self.completed_at
        if self.dropped_at is not None:
            return self.dropped_at
        return self.arrival

    @property
    def end_to_end_seconds(self) -> float:
        """Full ingest→end latency of the frame."""
        return self.end - self.arrival

    def to_span(self) -> Span:
        """The frame's telescoping span tree (root covers arrival→end)."""
        children: list[Span] = []
        if self.dispatched_at is not None:
            children.append(Span("queue", "queue", self.arrival, self.dispatched_at))
            service_end = (
                self.completed_at if self.completed_at is not None else self.dispatched_at
            )
            phase_spans = tuple(
                Span(name, "service", start, end) for name, start, end in self.phases
            )
            children.append(
                Span("service", "service", self.dispatched_at, service_end, phase_spans)
            )
            if self.upload_start is not None and self.upload_end is not None:
                children.append(Span("upload_wait", "upload", service_end, self.upload_start))
                children.append(
                    Span(
                        "upload",
                        "upload",
                        self.upload_start,
                        self.upload_end,
                        args=(
                            {"description": self.upload_description}
                            if self.upload_description
                            else {}
                        ),
                    )
                )
        elif self.enqueued and self.dropped_at is not None:
            children.append(Span("queue", "queue", self.arrival, self.dropped_at))
        args: dict[str, object] = {
            "camera": self.camera_id,
            "frame_index": self.frame_index,
        }
        if self.admitted is not None:
            args["admitted"] = self.admitted
        if self.drop_reason is not None:
            args["drop_reason"] = self.drop_reason
        for key in sorted(self.annotations):
            args[key] = self.annotations[key]
        return Span(
            f"{self.camera_id}/frame{self.frame_index:05d}",
            "frame",
            self.arrival,
            self.end,
            tuple(children),
            args,
        )

    def unaccounted_seconds(self) -> float:
        """Root duration minus the sum of top-level children (≈0 by design)."""
        root = self.to_span()
        return root.duration - sum(child.duration for child in root.children)


class NodeTracer:
    """One edge node's view of the cluster :class:`Tracer`.

    Every ``record_*`` method silently ignores frames that were not sampled
    (or never began on this node), so the runtime's hot paths can call them
    unconditionally once guarded by ``tracer is not None``.
    """

    def __init__(self, tracer: "Tracer", node_id: str, pid: int) -> None:
        self.tracer = tracer
        self.node_id = node_id
        self.pid = pid
        self._traces: dict[tuple[str, int], FrameTrace] = {}
        # Upload description -> the traced frames whose event it carries.
        self._uploads: dict[str, list[tuple[str, int]]] = {}

    # -- sampling --------------------------------------------------------------
    def sampled(self, camera_id: str, frame_index: int) -> bool:
        """Whether this frame is in the deterministic 1-in-N sample."""
        return self.tracer.sampled(camera_id, frame_index)

    def has_trace(self, camera_id: str, frame_index: int) -> bool:
        """Whether a lifecycle record exists for this frame on this node."""
        return (camera_id, int(frame_index)) in self._traces

    def _get(self, camera_id: str, frame_index: int) -> FrameTrace | None:
        return self._traces.get((camera_id, int(frame_index)))

    # -- lifecycle recording ---------------------------------------------------
    def begin_frame(self, camera_id: str, frame_index: int, now: float) -> bool:
        """Open a lifecycle record at ingest if the frame is sampled."""
        if not self.sampled(camera_id, frame_index):
            return False
        self._traces[(camera_id, int(frame_index))] = FrameTrace(
            camera_id=camera_id, frame_index=int(frame_index), arrival=now
        )
        return True

    def record_admission(self, camera_id: str, frame_index: int, admitted: bool) -> None:
        """Record the node-wide admission decision for a traced frame."""
        trace = self._get(camera_id, frame_index)
        if trace is not None:
            trace.admitted = bool(admitted)

    def record_enqueue(self, camera_id: str, frame_index: int, depth: int) -> None:
        """Record that a traced frame entered its camera queue."""
        trace = self._get(camera_id, frame_index)
        if trace is not None:
            trace.enqueued = True
            trace.enqueue_depth = int(depth)

    def record_drop(self, camera_id: str, frame_index: int, reason: str, now: float) -> None:
        """Record that a traced frame was shed (at the door or from a queue)."""
        trace = self._get(camera_id, frame_index)
        if trace is not None:
            trace.dropped_at = now
            trace.drop_reason = reason

    def record_dispatch(
        self,
        camera_id: str,
        frame_index: int,
        now: float,
        phases: tuple[tuple[str, float, float], ...] = (),
    ) -> None:
        """Record that a traced frame left its queue for a worker."""
        trace = self._get(camera_id, frame_index)
        if trace is not None:
            trace.dispatched_at = now
            trace.phases = tuple(phases)

    def record_completion(self, camera_id: str, frame_index: int, now: float) -> None:
        """Record that a traced frame finished scoring."""
        trace = self._get(camera_id, frame_index)
        if trace is not None:
            trace.completed_at = now

    def annotate(self, camera_id: str, frame_index: int, key: str, value: object) -> None:
        """Attach one key/value to a traced frame (pipeline match info etc.)."""
        trace = self._get(camera_id, frame_index)
        if trace is not None:
            trace.annotations[key] = value

    def register_upload(
        self, description: str, camera_id: str, frame_index: int, available_at: float
    ) -> None:
        """Announce that ``description``'s event carries a traced frame.

        The transfer itself completes later (immediately for a private
        uplink, in the cluster drain for a work-conserving one);
        :meth:`complete_upload` routes the times back by description.  A
        frame matched by several microclassifiers keeps its first event.
        """
        trace = self._get(camera_id, frame_index)
        if trace is None or trace.upload_description is not None:
            return
        trace.upload_description = description
        trace.upload_available_at = available_at
        self._uploads.setdefault(description, []).append((camera_id, int(frame_index)))

    def complete_upload(self, description: str, start_time: float, end_time: float) -> None:
        """Stamp the transfer interval onto every frame riding ``description``."""
        for key in self._uploads.get(description, ()):
            trace = self._traces[key]
            if trace.upload_start is None:
                trace.upload_start = start_time
                trace.upload_end = end_time

    # -- export ----------------------------------------------------------------
    def frame_traces(self) -> list[FrameTrace]:
        """All lifecycle records on this node, sorted by (camera, frame)."""
        return [self._traces[key] for key in sorted(self._traces)]


class Tracer:
    """Cluster-wide frame-lifecycle tracer with deterministic sampling.

    ``sample_every=N`` traces roughly one frame in N; ``sample_every=1``
    traces everything (tests).  Call :meth:`node` to get the per-node
    recording surface the runtimes write through, and
    :meth:`write_chrome_trace` (or :meth:`chrome_trace_json`) to export.
    """

    def __init__(self, sample_every: int = 64) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        self.sample_every = int(sample_every)
        self._nodes: dict[str, NodeTracer] = {}

    def sampled(self, camera_id: str, frame_index: int) -> bool:
        """Deterministic sampling decision keyed on camera id + frame index."""
        if self.sample_every == 1:
            return True
        key = f"{camera_id}/{int(frame_index)}".encode()
        return zlib.crc32(key) % self.sample_every == 0

    def node(self, node_id: str) -> NodeTracer:
        """The recording surface for ``node_id`` (created on first use).

        Process ids are assigned in creation order, so creating nodes in a
        fixed order (as the sharded runtime does) keeps exports stable.
        """
        if node_id not in self._nodes:
            self._nodes[node_id] = NodeTracer(self, node_id, pid=len(self._nodes) + 1)
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list[str]:
        """Nodes that have a recording surface, in creation order."""
        return list(self._nodes)

    def frame_traces(self) -> list[FrameTrace]:
        """Every lifecycle record across all nodes (node order, then key)."""
        return [trace for node in self._nodes.values() for trace in node.frame_traces()]

    # -- Chrome trace-event export ---------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event object (``{"traceEvents": ...}``).

        One process per node, one thread per camera (sorted camera ids get
        ascending tids per node), one complete (``X``) event per span, and
        instant (``i``) events for ingest, admission, and drops.  Everything
        is emitted in a deterministic order.
        """
        events: list[dict] = []
        for node in self._nodes.values():
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": node.pid,
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": f"edge {node.node_id}"},
                }
            )
            traces = node.frame_traces()
            cameras = sorted({trace.camera_id for trace in traces})
            tids = {camera_id: tid for tid, camera_id in enumerate(cameras, start=1)}
            for camera_id in cameras:
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": node.pid,
                        "tid": tids[camera_id],
                        "ts": 0,
                        "args": {"name": camera_id},
                    }
                )
            for trace in traces:
                pid, tid = node.pid, tids[trace.camera_id]
                for span in trace.to_span().walk():
                    event = {
                        "ph": "X",
                        "name": span.name,
                        "cat": span.category,
                        "ts": _us(span.start),
                        "dur": _us(span.duration),
                        "pid": pid,
                        "tid": tid,
                    }
                    if span.args:
                        event["args"] = dict(span.args)
                    events.append(event)
                events.append(
                    {
                        "ph": "i",
                        "s": "t",
                        "name": "ingest",
                        "cat": "lifecycle",
                        "ts": _us(trace.arrival),
                        "pid": pid,
                        "tid": tid,
                    }
                )
                if trace.admitted is not None:
                    events.append(
                        {
                            "ph": "i",
                            "s": "t",
                            "name": "admission",
                            "cat": "lifecycle",
                            "ts": _us(trace.arrival),
                            "pid": pid,
                            "tid": tid,
                            "args": {"admitted": trace.admitted},
                        }
                    )
                if trace.dropped_at is not None:
                    events.append(
                        {
                            "ph": "i",
                            "s": "t",
                            "name": "dropped",
                            "cat": "lifecycle",
                            "ts": _us(trace.dropped_at),
                            "pid": pid,
                            "tid": tid,
                            "args": {"reason": trace.drop_reason},
                        }
                    )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def chrome_trace_json(self) -> str:
        """The trace as a deterministic JSON string."""
        return json.dumps(self.to_chrome_trace(), sort_keys=True, separators=(",", ":"))

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Write the Chrome trace-event JSON to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.chrome_trace_json() + "\n", encoding="utf-8")
        return path
