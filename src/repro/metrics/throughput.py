"""Wall-clock throughput measurement.

The paper's Figure 5 reports frames per second of each filtering approach on
an edge-class CPU.  Absolute numbers on this repository's NumPy substrate
are not comparable to the paper's optimized Caffe/TensorFlow stack (and the
paper itself stresses that trends matter more than magnitudes), but the
relative scaling with classifier count is, so we also measure it directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["ThroughputMeasurement", "measure_throughput"]


@dataclass(frozen=True)
class ThroughputMeasurement:
    """Result of timing a frame-processing function."""

    frames: int
    seconds: float

    @property
    def fps(self) -> float:
        """Frames processed per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.frames / self.seconds

    @property
    def seconds_per_frame(self) -> float:
        """Average processing latency per frame."""
        if self.frames == 0:
            return 0.0
        return self.seconds / self.frames


def measure_throughput(
    process_frame: Callable[[int], None],
    num_frames: int,
    warmup_frames: int = 0,
    timer: Callable[[], float] = time.perf_counter,
) -> ThroughputMeasurement:
    """Time ``process_frame`` over ``num_frames`` calls (after optional warmup).

    ``process_frame`` receives the frame index; exceptions propagate.
    """
    if num_frames <= 0:
        raise ValueError("num_frames must be positive")
    if warmup_frames < 0:
        raise ValueError("warmup_frames must be non-negative")
    for i in range(warmup_frames):
        process_frame(i)
    start = timer()
    for i in range(num_frames):
        process_frame(i)
    elapsed = timer() - start
    return ThroughputMeasurement(frames=num_frames, seconds=float(elapsed))
