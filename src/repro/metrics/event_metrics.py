"""Event-centric accuracy metrics (paper Section 4.2).

FilterForward is evaluated with an *event F1 score*: the harmonic mean of

* standard per-frame **precision** (fraction of predicted-positive frames
  that are truly positive — this is what determines how much uplink
  bandwidth is wasted), and
* a modified, event-aware **recall** adapted from Lee et al. (2018).  For a
  ground-truth event *i* with frame range ``R_i`` and predictions ``P``:

  - ``Existence_i`` is 1 if any frame of the event is detected, else 0;
  - ``Overlap_i`` is the fraction of the event's frames that are detected;
  - ``EventRecall_i = alpha * Existence_i + beta * Overlap_i``
    with ``alpha = 0.9`` and ``beta = 0.1`` (missing an event entirely is
    much worse than missing some of its frames).

Event recall is averaged over ground-truth events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.video.annotations import EventAnnotation, frame_labels_to_events

__all__ = [
    "existence_score",
    "overlap_score",
    "event_recall",
    "frame_precision",
    "event_f1_score",
    "EventF1Breakdown",
]

DEFAULT_ALPHA = 0.9
DEFAULT_BETA = 0.1


def _as_binary(labels: Sequence[int] | np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    return arr.astype(bool)


def existence_score(event: EventAnnotation, predictions: np.ndarray) -> float:
    """1.0 if any frame of ``event`` is predicted positive, else 0.0."""
    predictions = _as_binary(predictions, "predictions")
    end = min(event.end, predictions.size)
    if end <= event.start:
        return 0.0
    return float(predictions[event.start : end].any())


def overlap_score(event: EventAnnotation, predictions: np.ndarray) -> float:
    """Fraction of ``event``'s frames that are predicted positive."""
    predictions = _as_binary(predictions, "predictions")
    end = min(event.end, predictions.size)
    if end <= event.start:
        return 0.0
    detected = float(predictions[event.start : end].sum())
    return detected / event.length


def event_recall(
    ground_truth: Sequence[int] | np.ndarray,
    predictions: Sequence[int] | np.ndarray,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
) -> float:
    """Mean event recall over all ground-truth events.

    Returns 1.0 when there are no ground-truth events (nothing to miss).
    """
    if not np.isclose(alpha + beta, 1.0):
        raise ValueError("alpha + beta must equal 1.0")
    truth = _as_binary(ground_truth, "ground_truth")
    predictions = _as_binary(predictions, "predictions")
    if truth.size != predictions.size:
        raise ValueError(
            f"ground_truth and predictions must have equal length "
            f"({truth.size} vs {predictions.size})"
        )
    events = frame_labels_to_events(truth)
    if not events:
        return 1.0
    recalls = [
        alpha * existence_score(event, predictions) + beta * overlap_score(event, predictions)
        for event in events
    ]
    return float(np.mean(recalls))


def frame_precision(
    ground_truth: Sequence[int] | np.ndarray, predictions: Sequence[int] | np.ndarray
) -> float:
    """Standard per-frame precision: correctly detected / total detected.

    Returns 1.0 when nothing is predicted positive (no bandwidth is wasted).
    """
    truth = _as_binary(ground_truth, "ground_truth")
    predictions = _as_binary(predictions, "predictions")
    if truth.size != predictions.size:
        raise ValueError(
            f"ground_truth and predictions must have equal length "
            f"({truth.size} vs {predictions.size})"
        )
    detected = predictions.sum()
    if detected == 0:
        return 1.0
    return float((truth & predictions).sum() / detected)


@dataclass(frozen=True)
class EventF1Breakdown:
    """Event F1 plus its precision/recall components."""

    f1: float
    precision: float
    recall: float
    num_events: int
    num_predicted_frames: int


def event_f1_score(
    ground_truth: Sequence[int] | np.ndarray,
    predictions: Sequence[int] | np.ndarray,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
    return_breakdown: bool = False,
) -> float | EventF1Breakdown:
    """Event F1: harmonic mean of frame precision and event recall."""
    truth = _as_binary(ground_truth, "ground_truth")
    preds = _as_binary(predictions, "predictions")
    precision = frame_precision(truth, preds)
    recall = event_recall(truth, preds, alpha=alpha, beta=beta)
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    if not return_breakdown:
        return float(f1)
    return EventF1Breakdown(
        f1=float(f1),
        precision=float(precision),
        recall=float(recall),
        num_events=len(frame_labels_to_events(truth)),
        num_predicted_frames=int(preds.sum()),
    )
