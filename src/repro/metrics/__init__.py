"""Evaluation metrics: event recall, precision, event F1, bandwidth, throughput."""

from repro.metrics.bandwidth import BandwidthReport, bandwidth_reduction, bits_to_mbps
from repro.metrics.event_metrics import (
    EventF1Breakdown,
    event_f1_score,
    event_recall,
    existence_score,
    frame_precision,
    overlap_score,
)
from repro.metrics.throughput import ThroughputMeasurement, measure_throughput

__all__ = [
    "BandwidthReport",
    "EventF1Breakdown",
    "ThroughputMeasurement",
    "bandwidth_reduction",
    "bits_to_mbps",
    "event_f1_score",
    "event_recall",
    "existence_score",
    "frame_precision",
    "measure_throughput",
    "overlap_score",
]
