"""Bandwidth accounting helpers."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["bits_to_mbps", "bandwidth_reduction", "BandwidthReport"]


def bits_to_mbps(bits_per_second: float) -> float:
    """Convert bits/second to megabits/second (paper figures use Mb/s)."""
    return bits_per_second / 1e6


def bandwidth_reduction(baseline_bps: float, filtered_bps: float) -> float:
    """How many times less bandwidth the filtered upload uses than the baseline."""
    if baseline_bps < 0 or filtered_bps < 0:
        raise ValueError("bandwidths must be non-negative")
    if filtered_bps == 0:
        return float("inf")
    return baseline_bps / filtered_bps


@dataclass(frozen=True)
class BandwidthReport:
    """Bandwidth use of one upload strategy over one stream."""

    strategy: str
    average_bps: float
    uploaded_frames: int
    total_frames: int
    stream_duration: float

    @property
    def average_mbps(self) -> float:
        """Average bandwidth in Mb/s."""
        return bits_to_mbps(self.average_bps)

    @property
    def upload_fraction(self) -> float:
        """Fraction of frames uploaded."""
        if self.total_frames == 0:
            return 0.0
        return self.uploaded_frames / self.total_frames

    def reduction_versus(self, other: "BandwidthReport") -> float:
        """Bandwidth reduction of this strategy relative to ``other``."""
        return bandwidth_reduction(other.average_bps, self.average_bps)
