"""The :class:`Frame` container.

A frame carries decoded pixels (float32 RGB in ``[0, 1]``, HWC layout), its
position in the stream, a wall-clock timestamp derived from the stream frame
rate, and a metadata dictionary.  FilterForward stores per-frame event
membership in the metadata (paper Section 3.5): a mapping from
microclassifier name to event ID.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Frame"]


@dataclass
class Frame:
    """A single decoded video frame.

    Attributes
    ----------
    index:
        Zero-based frame index within its stream.
    timestamp:
        Seconds since the start of the stream.
    pixels:
        ``(height, width, 3)`` float32 RGB array with values in ``[0, 1]``.
    metadata:
        Free-form per-frame metadata.  FilterForward records event membership
        here under the ``"events"`` key as ``{mc_name: event_id}``.
    """

    index: int
    timestamp: float
    pixels: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        pixels = np.asarray(self.pixels, dtype=np.float32)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValueError(
                f"Frame pixels must have shape (H, W, 3); got {pixels.shape}"
            )
        self.pixels = pixels

    @property
    def height(self) -> int:
        """Frame height in pixels."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Frame width in pixels."""
        return int(self.pixels.shape[1])

    @property
    def resolution(self) -> tuple[int, int]:
        """``(width, height)`` in pixels, matching the paper's convention."""
        return (self.width, self.height)

    def copy(self) -> "Frame":
        """Deep copy of this frame (pixels and metadata)."""
        return Frame(
            index=self.index,
            timestamp=self.timestamp,
            pixels=self.pixels.copy(),
            metadata=dict(self.metadata),
        )

    def with_pixels(self, pixels: np.ndarray) -> "Frame":
        """Return a new frame sharing index/timestamp/metadata but new pixels."""
        return Frame(
            index=self.index,
            timestamp=self.timestamp,
            pixels=pixels,
            metadata=dict(self.metadata),
        )

    def record_event(self, mc_name: str, event_id: int) -> None:
        """Record that this frame belongs to ``event_id`` for microclassifier ``mc_name``."""
        self.metadata.setdefault("events", {})[mc_name] = int(event_id)

    def event_memberships(self) -> dict[str, int]:
        """Mapping of microclassifier name to event ID for this frame."""
        return dict(self.metadata.get("events", {}))
