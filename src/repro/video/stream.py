"""Video stream abstractions.

A :class:`VideoStream` is an ordered, indexable source of
:class:`~repro.video.frame.Frame` objects with a fixed resolution and frame
rate.  :class:`InMemoryVideoStream` holds decoded frames in memory, which is
sufficient for the scaled-down experiments in this repository; the interface
is deliberately minimal so a disk- or camera-backed stream can slot in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

import numpy as np

from repro.video.frame import Frame

__all__ = ["VideoStream", "InMemoryVideoStream"]


class VideoStream(ABC):
    """Ordered sequence of frames with fixed resolution and frame rate."""

    def __init__(self, width: int, height: int, frame_rate: float) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("width and height must be positive")
        if frame_rate <= 0:
            raise ValueError("frame_rate must be positive")
        self.width = int(width)
        self.height = int(height)
        self.frame_rate = float(frame_rate)

    @property
    def resolution(self) -> tuple[int, int]:
        """``(width, height)`` in pixels."""
        return (self.width, self.height)

    @abstractmethod
    def __len__(self) -> int:
        """Number of frames in the stream."""

    @abstractmethod
    def frame(self, index: int) -> Frame:
        """Return the frame at ``index``."""

    def __getitem__(self, index: int) -> Frame:
        return self.frame(index)

    def __iter__(self) -> Iterator[Frame]:
        for i in range(len(self)):
            yield self.frame(i)

    @property
    def duration(self) -> float:
        """Stream duration in seconds."""
        return len(self) / self.frame_rate

    def segment(self, start: int, end: int) -> list[Frame]:
        """Frames with indices in ``[start, end)`` (clamped to the stream)."""
        start = max(0, int(start))
        end = min(len(self), int(end))
        return [self.frame(i) for i in range(start, end)]

    def raw_bits_per_second(self, bits_per_pixel: int = 24) -> float:
        """Uncompressed data rate of this stream (paper quotes ~1.5 Gb/s for 1080p30)."""
        return self.width * self.height * bits_per_pixel * self.frame_rate


class InMemoryVideoStream(VideoStream):
    """A stream backed by a list of frames held in memory."""

    def __init__(self, frames: Sequence[Frame], frame_rate: float) -> None:
        if not frames:
            raise ValueError("InMemoryVideoStream requires at least one frame")
        first = frames[0]
        super().__init__(first.width, first.height, frame_rate)
        for f in frames:
            if (f.height, f.width) != (self.height, self.width):
                raise ValueError(
                    "All frames in a stream must share one resolution; "
                    f"frame {f.index} is {f.width}x{f.height}, expected "
                    f"{self.width}x{self.height}"
                )
        self._frames = list(frames)

    @classmethod
    def from_arrays(
        cls, arrays: Sequence[np.ndarray], frame_rate: float
    ) -> "InMemoryVideoStream":
        """Build a stream from raw pixel arrays, assigning indices and timestamps."""
        if frame_rate <= 0:
            raise ValueError("frame_rate must be positive")
        frames = [
            Frame(index=i, timestamp=i / frame_rate, pixels=np.asarray(a))
            for i, a in enumerate(arrays)
        ]
        return cls(frames, frame_rate)

    def __len__(self) -> int:
        return len(self._frames)

    def frame(self, index: int) -> Frame:
        if not 0 <= index < len(self._frames):
            raise IndexError(f"Frame index {index} out of range [0, {len(self._frames)})")
        return self._frames[index]
