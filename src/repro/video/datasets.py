"""Dataset builders mirroring the paper's Jackson and Roadway feeds.

Figure 3 of the paper describes two datasets:

=============  =====================  =====================
Attribute      Jackson                Roadway
=============  =====================  =====================
Resolution     1920 x 1080            2048 x 850
Frame rate     15 fps                 15 fps
Frames         600,000                324,009
Task           Pedestrian             People with red
Event frames   95,238                 71,296
Unique events  506                    326
Crop region    (0,539)-(1919,1079)    (0,315)-(2047,819)
=============  =====================  =====================

The builders here create *synthetic* equivalents (see DESIGN.md for the
substitution rationale) at a configurable spatial and temporal scale.  Each
dataset provides a training video and a test video ("the first video is used
for training and the second for testing", Section 4.1), per-frame ground
truth, and the task's rectangular crop region rescaled to the generated
resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.video.annotations import FrameLabels
from repro.video.stream import InMemoryVideoStream
from repro.video.synthetic import (
    TASK_PEDESTRIAN,
    TASK_PEOPLE_WITH_RED,
    SceneConfig,
    SurveillanceSceneGenerator,
)

__all__ = ["DatasetSpec", "SyntheticDataset", "make_jackson_like", "make_roadway_like"]

# Paper-reported attributes, used for Table 3 reporting and crop rescaling.
PAPER_JACKSON = {
    "resolution": (1920, 1080),
    "frame_rate": 15.0,
    "frames": 600_000,
    "task": "Pedestrian",
    "event_frames": 95_238,
    "unique_events": 506,
    "crop": (0, 539, 1919, 1079),
}
PAPER_ROADWAY = {
    "resolution": (2048, 850),
    "frame_rate": 15.0,
    "frames": 324_009,
    "task": "People with red",
    "event_frames": 71_296,
    "unique_events": 326,
    "crop": (0, 315, 2047, 819),
}


@dataclass(frozen=True)
class DatasetSpec:
    """Describes one dataset: paper-scale attributes and generated-scale attributes."""

    name: str
    task: str
    paper_resolution: tuple[int, int]
    resolution: tuple[int, int]
    frame_rate: float
    num_frames: int
    paper_crop: tuple[int, int, int, int]
    crop: tuple[int, int, int, int]

    @property
    def scale(self) -> float:
        """Linear spatial scale of the generated video relative to the paper's."""
        return self.resolution[0] / self.paper_resolution[0]


@dataclass
class SyntheticDataset:
    """A generated dataset: train and test streams with ground truth."""

    spec: DatasetSpec
    train_stream: InMemoryVideoStream
    test_stream: InMemoryVideoStream
    train_labels: FrameLabels
    test_labels: FrameLabels
    extras: dict = field(default_factory=dict)

    def summary(self) -> dict:
        """Table-3-style attribute summary of the generated data."""
        return {
            "name": self.spec.name,
            "resolution": f"{self.spec.resolution[0]} x {self.spec.resolution[1]}",
            "frame_rate": self.spec.frame_rate,
            "frames": len(self.train_stream) + len(self.test_stream),
            "task": self.spec.task,
            "event_frames": self.train_labels.num_positive + self.test_labels.num_positive,
            "unique_events": len(self.train_labels.events()) + len(self.test_labels.events()),
            "crop": self.spec.crop,
        }


def _rescale_crop(
    crop: tuple[int, int, int, int],
    paper_resolution: tuple[int, int],
    resolution: tuple[int, int],
) -> tuple[int, int, int, int]:
    """Rescale a paper-pixel crop rectangle to the generated resolution."""
    px_w, px_h = paper_resolution
    w, h = resolution
    x0, y0, x1, y1 = crop
    return (
        int(round(x0 / px_w * w)),
        int(round(y0 / px_h * h)),
        min(w, int(round((x1 + 1) / px_w * w))),
        min(h, int(round((y1 + 1) / px_h * h))),
    )


# Scene-generation defaults calibrated so the generated videos preserve the
# paper datasets' statistical properties at short clip lengths: events are
# rare (roughly 15-30% of frames, vs. 16%/22% in the paper), there are
# several distinct events per split, and events last tens of frames.
_JACKSON_SCENE_DEFAULTS = {
    "pedestrian_rate": 0.025,
    "red_pedestrian_rate": 0.005,
    "car_rate": 0.020,
    "cyclist_rate": 0.004,
    "crossing_fraction": 0.5,
    "person_speed_range": (2.0, 3.5),
    "max_person_duration": 25,
}
_ROADWAY_SCENE_DEFAULTS = {
    "pedestrian_rate": 0.015,
    "red_pedestrian_rate": 0.020,
    "car_rate": 0.015,
    "cyclist_rate": 0.003,
    "crossing_fraction": 0.4,
    "person_speed_range": (2.5, 4.5),
    "max_person_duration": 16,
}


def _build_dataset(
    name: str,
    paper: dict,
    task: str,
    width: int,
    height: int,
    num_frames: int,
    seed: int,
    **scene_overrides,
) -> SyntheticDataset:
    resolution = (width, height)
    crop = _rescale_crop(paper["crop"], paper["resolution"], resolution)
    spec = DatasetSpec(
        name=name,
        task=task,
        paper_resolution=paper["resolution"],
        resolution=resolution,
        frame_rate=paper["frame_rate"],
        num_frames=num_frames,
        paper_crop=paper["crop"],
        crop=crop,
    )
    streams: list[InMemoryVideoStream] = []
    labels: list[FrameLabels] = []
    # Train and test videos share the same camera viewpoint (same background
    # seed) but contain different traffic (different object seeds), mirroring
    # the paper's two back-to-back recordings from the same camera.
    for split_index in range(2):
        config = SceneConfig(
            width=width,
            height=height,
            frame_rate=paper["frame_rate"],
            num_frames=num_frames,
            seed=seed,
            object_seed=seed + 1 + 1000 * split_index,
            **scene_overrides,
        )
        generator = SurveillanceSceneGenerator(config)
        scene = generator.generate(tasks=(task,))
        streams.append(scene.stream)
        labels.append(scene.labels[task])
    return SyntheticDataset(
        spec=spec,
        train_stream=streams[0],
        test_stream=streams[1],
        train_labels=labels[0],
        test_labels=labels[1],
    )


def make_jackson_like(
    num_frames: int = 600,
    width: int = 240,
    height: int = 136,
    seed: int = 7,
    **scene_overrides,
) -> SyntheticDataset:
    """Build a Jackson-like dataset (traffic camera, *Pedestrian* task).

    Defaults generate a 240x136 stream (1/8 linear scale of 1920x1080) with
    ``num_frames`` frames per split.  Pass ``scene_overrides`` to adjust spawn
    rates or object sizes.
    """
    return _build_dataset(
        "jackson",
        PAPER_JACKSON,
        TASK_PEDESTRIAN,
        width,
        height,
        num_frames,
        seed,
        **{**_JACKSON_SCENE_DEFAULTS, **scene_overrides},
    )


def make_roadway_like(
    num_frames: int = 600,
    width: int = 256,
    height: int = 108,
    seed: int = 23,
    **scene_overrides,
) -> SyntheticDataset:
    """Build a Roadway-like dataset (urban street camera, *People with red* task).

    Defaults generate a 256x108 stream (1/8 linear scale of 2048x850) with
    ``num_frames`` frames per split.
    """
    return _build_dataset(
        "roadway",
        PAPER_ROADWAY,
        TASK_PEOPLE_WITH_RED,
        width,
        height,
        num_frames,
        seed,
        **{**_ROADWAY_SCENE_DEFAULTS, **scene_overrides},
    )
