"""Ground-truth annotations: per-frame labels and multi-frame events.

The paper's evaluation is event-centric: an *event* is a contiguous range of
frames during which the interesting state holds (e.g. a pedestrian is in the
crosswalk).  These containers convert between per-frame binary labels and
event ranges, and are shared by the synthetic datasets, the smoothing stage,
and the event-F1 metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "EventAnnotation",
    "FrameLabels",
    "frame_labels_to_events",
    "events_to_frame_labels",
]


@dataclass(frozen=True)
class EventAnnotation:
    """A single event: frames ``[start, end)`` are positive.

    ``end`` is exclusive, so ``length == end - start``.
    """

    start: int
    end: int
    label: str = "event"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.end <= self.start:
            raise ValueError(f"end ({self.end}) must be greater than start ({self.start})")

    @property
    def length(self) -> int:
        """Number of frames in the event."""
        return self.end - self.start

    def frames(self) -> range:
        """Range of frame indices covered by the event."""
        return range(self.start, self.end)

    def contains(self, frame_index: int) -> bool:
        """Whether ``frame_index`` falls inside the event."""
        return self.start <= frame_index < self.end

    def overlap(self, other: "EventAnnotation") -> int:
        """Number of frames shared with ``other``."""
        return max(0, min(self.end, other.end) - max(self.start, other.start))


class FrameLabels:
    """Per-frame binary ground truth for one task over one stream."""

    def __init__(self, labels: Sequence[int] | np.ndarray, task: str = "task") -> None:
        arr = np.asarray(labels)
        if arr.ndim != 1:
            raise ValueError("labels must be one-dimensional")
        if not np.isin(arr, (0, 1)).all():
            raise ValueError("labels must be binary (0 or 1)")
        self.labels = arr.astype(np.int8)
        self.task = task

    def __len__(self) -> int:
        return int(self.labels.size)

    def __getitem__(self, index: int) -> int:
        return int(self.labels[index])

    @property
    def num_positive(self) -> int:
        """Number of positive (event) frames."""
        return int(self.labels.sum())

    @property
    def positive_fraction(self) -> float:
        """Fraction of frames that are part of an event."""
        return float(self.labels.mean()) if len(self) else 0.0

    def events(self) -> list[EventAnnotation]:
        """Contiguous positive runs as :class:`EventAnnotation` objects."""
        return frame_labels_to_events(self.labels, label=self.task)

    @classmethod
    def from_events(
        cls, events: Iterable[EventAnnotation], num_frames: int, task: str = "task"
    ) -> "FrameLabels":
        """Build per-frame labels from event ranges."""
        return cls(events_to_frame_labels(events, num_frames), task=task)


def frame_labels_to_events(
    labels: Sequence[int] | np.ndarray, label: str = "event"
) -> list[EventAnnotation]:
    """Convert a binary per-frame label sequence to contiguous event ranges."""
    arr = np.asarray(labels).astype(bool)
    if arr.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    if arr.size == 0:
        return []
    padded = np.concatenate(([False], arr, [False]))
    diffs = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(diffs == 1)
    ends = np.flatnonzero(diffs == -1)
    return [EventAnnotation(int(s), int(e), label=label) for s, e in zip(starts, ends)]


def events_to_frame_labels(events: Iterable[EventAnnotation], num_frames: int) -> np.ndarray:
    """Convert event ranges to a binary per-frame label array of length ``num_frames``."""
    if num_frames < 0:
        raise ValueError("num_frames must be non-negative")
    labels = np.zeros(num_frames, dtype=np.int8)
    for event in events:
        if event.start >= num_frames:
            continue
        labels[event.start : min(event.end, num_frames)] = 1
    return labels
