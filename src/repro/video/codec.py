"""H.264-style codec simulation.

FilterForward re-encodes matched event frames with H.264 at a user-chosen
bitrate before upload, and the "compress everything" baseline uploads the
whole stream heavily compressed.  This module provides a rate-distortion
*simulator* for those two uses:

* **Rate**: the bits spent on each encoded frame are derived from the target
  bitrate, modulated by per-frame content complexity (temporal difference
  from the previous frame), so static scenes compress better than busy ones —
  the property the paper relies on ("the larger proportion of unchanging
  pixels makes such streams more compressible", Section 5.2.2).
* **Distortion**: the decoded pixels are degraded according to the achieved
  bits-per-pixel: spatial detail is removed via block averaging and values
  are quantized.  Small objects (the paper's central challenge) disappear
  first, which is exactly the mechanism that makes "compress everything"
  lose accuracy in Figure 4.

The simulator is deliberately simple, calibrated so that ~2 Mb/s for a
1080p15 stream corresponds to "low quality" (paper Section 2.2.1) and
~0.1 bits/pixel is visually transparent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.video.frame import Frame
from repro.video.stream import VideoStream

__all__ = ["CompressedFrame", "EncodedSegment", "H264Simulator"]

# Bits per pixel at which the codec is effectively transparent (no visible
# detail loss).  0.10 bpp at 1080p15 is ~3.1 Mb/s, consistent with "good
# quality" H.264 for static surveillance scenes.
_TRANSPARENT_BPP = 0.10
# Detail scale is never allowed below this floor (the codec always keeps
# *some* structure).
_MIN_DETAIL_SCALE = 0.04


@dataclass(frozen=True)
class CompressedFrame:
    """One encoded frame: how many bits it consumed and how much detail survived."""

    index: int
    bits: float
    detail_scale: float
    quantization_levels: int


@dataclass
class EncodedSegment:
    """A contiguous (or selected) set of frames encoded at one target bitrate."""

    frames: list[CompressedFrame]
    target_bitrate: float
    frame_rate: float
    resolution: tuple[int, int]
    stream_duration: float

    @property
    def total_bits(self) -> float:
        """Total bits consumed by the encoded frames."""
        return float(sum(f.bits for f in self.frames))

    @property
    def encoded_duration(self) -> float:
        """Wall-clock duration covered by the encoded frames."""
        return len(self.frames) / self.frame_rate

    @property
    def average_bandwidth(self) -> float:
        """Average uplink bandwidth (bits/second) over the *whole* stream.

        FilterForward's uploads are bursty: matched frames are sent at the
        target bitrate, and nothing is sent in between, so the average over
        the stream duration is what counts against the uplink budget.
        """
        if self.stream_duration <= 0:
            return 0.0
        return self.total_bits / self.stream_duration


class H264Simulator:
    """Rate-distortion model of an H.264 encoder.

    Parameters
    ----------
    transparent_bpp:
        Bits-per-pixel at and above which no detail is lost.
    complexity_weight:
        How strongly per-frame temporal complexity modulates the bit
        allocation (0 disables content adaptivity).
    seed:
        Seed for the (tiny) stochastic component of the bit allocation.
    """

    def __init__(
        self,
        transparent_bpp: float = _TRANSPARENT_BPP,
        complexity_weight: float = 0.5,
        seed: int = 0,
    ) -> None:
        if transparent_bpp <= 0:
            raise ValueError("transparent_bpp must be positive")
        if not 0.0 <= complexity_weight <= 1.0:
            raise ValueError("complexity_weight must be in [0, 1]")
        self.transparent_bpp = float(transparent_bpp)
        self.complexity_weight = float(complexity_weight)
        self._rng = np.random.default_rng(seed)

    # -- rate model --------------------------------------------------------
    @staticmethod
    def temporal_diffs(frames: Sequence[Frame]) -> np.ndarray:
        """Per-frame mean absolute pixel difference from the previous frame.

        The first entry is a placeholder (it has no predecessor) and is
        replaced by the mean of the rest in
        :meth:`complexities_from_diffs`.  A streaming caller can produce the
        same array one frame at a time by remembering the previous frame's
        pixels.
        """
        diffs = np.empty(len(frames))
        if len(frames) == 0:
            return diffs
        diffs[0] = 1.0
        prev = frames[0].pixels
        for i, frame in enumerate(frames[1:], start=1):
            diffs[i] = float(np.mean(np.abs(frame.pixels - prev)))
            prev = frame.pixels
        return diffs

    def complexities_from_diffs(self, diffs: np.ndarray) -> np.ndarray:
        """Relative bit-cost multipliers (mean 1.0) from temporal differences."""
        diffs = np.asarray(diffs, dtype=np.float64)
        if diffs.size <= 1:
            return np.ones(diffs.size)
        diffs = diffs.copy()
        diffs[0] = diffs[1:].mean()
        mean = diffs.mean()
        if mean <= 0:
            return np.ones(diffs.size)
        relative = diffs / mean
        return 1.0 + self.complexity_weight * (relative - 1.0)

    def _frame_complexities(self, frames: Sequence[Frame]) -> np.ndarray:
        """Relative bit-cost multipliers (mean 1.0) from temporal differences."""
        if len(frames) <= 1:
            return np.ones(len(frames))
        return self.complexities_from_diffs(self.temporal_diffs(frames))

    def detail_scale_for_bpp(self, bits_per_pixel: float) -> float:
        """Fraction of spatial detail retained at ``bits_per_pixel``.

        1.0 means no loss; smaller values mean the effective resolution is
        reduced by ``1 / detail_scale`` in each dimension.
        """
        if bits_per_pixel <= 0:
            return _MIN_DETAIL_SCALE
        scale = np.sqrt(bits_per_pixel / self.transparent_bpp)
        return float(np.clip(scale, _MIN_DETAIL_SCALE, 1.0))

    def quantization_levels_for_bpp(self, bits_per_pixel: float) -> int:
        """Number of representable intensity levels at ``bits_per_pixel``."""
        scale = self.detail_scale_for_bpp(bits_per_pixel)
        return int(np.clip(round(256 * scale), 8, 256))

    # -- encoding ----------------------------------------------------------
    def encode(
        self,
        frames: Sequence[Frame],
        target_bitrate: float,
        frame_rate: float,
        resolution: tuple[int, int],
        stream_duration: float | None = None,
    ) -> EncodedSegment:
        """Encode ``frames`` at ``target_bitrate`` (bits/second).

        ``stream_duration`` is the duration of the *original* stream the
        frames were selected from; it defaults to the duration of the encoded
        frames themselves (i.e. a full-stream encode).
        """
        return self.encode_precomputed(
            [frame.index for frame in frames],
            self._frame_complexities(frames),
            target_bitrate,
            frame_rate,
            resolution,
            stream_duration=stream_duration,
        )

    def encode_precomputed(
        self,
        frame_indices: Sequence[int],
        complexities: np.ndarray,
        target_bitrate: float,
        frame_rate: float,
        resolution: tuple[int, int],
        stream_duration: float | None = None,
    ) -> EncodedSegment:
        """Encode from precomputed per-frame complexity multipliers.

        This is the streaming-friendly entry point: a caller that cannot hold
        the frames themselves accumulates temporal-difference scalars online
        (see :meth:`temporal_diffs`), converts them with
        :meth:`complexities_from_diffs`, and gets a bit-identical
        :class:`EncodedSegment` to :meth:`encode` on the same frames.
        """
        if target_bitrate <= 0:
            raise ValueError("target_bitrate must be positive")
        if frame_rate <= 0:
            raise ValueError("frame_rate must be positive")
        if len(frame_indices) != len(complexities):
            raise ValueError("frame_indices and complexities must have equal length")
        width, height = resolution
        bits_per_frame_budget = target_bitrate / frame_rate
        bits_per_pixel = bits_per_frame_budget / (width * height)
        detail = self.detail_scale_for_bpp(bits_per_pixel)
        levels = self.quantization_levels_for_bpp(bits_per_pixel)
        encoded = [
            CompressedFrame(
                index=int(index),
                bits=float(bits_per_frame_budget * complexity),
                detail_scale=detail,
                quantization_levels=levels,
            )
            for index, complexity in zip(frame_indices, complexities)
        ]
        duration = (
            float(stream_duration)
            if stream_duration is not None
            else len(frame_indices) / frame_rate
        )
        return EncodedSegment(
            frames=encoded,
            target_bitrate=float(target_bitrate),
            frame_rate=float(frame_rate),
            resolution=(int(width), int(height)),
            stream_duration=duration,
        )

    def encode_stream(self, stream: VideoStream, target_bitrate: float) -> EncodedSegment:
        """Encode an entire stream at ``target_bitrate``."""
        frames = list(stream)
        return self.encode(
            frames,
            target_bitrate,
            stream.frame_rate,
            stream.resolution,
            stream_duration=stream.duration,
        )

    # -- distortion model --------------------------------------------------
    @staticmethod
    def _block_average(pixels: np.ndarray, block: int) -> np.ndarray:
        """Replace each ``block x block`` tile with its mean (vectorized)."""
        if block <= 1:
            return pixels
        h, w, c = pixels.shape
        pad_h = (-h) % block
        pad_w = (-w) % block
        padded = np.pad(pixels, ((0, pad_h), (0, pad_w), (0, 0)), mode="edge")
        ph, pw = padded.shape[:2]
        tiles = padded.reshape(ph // block, block, pw // block, block, c)
        means = tiles.mean(axis=(1, 3), keepdims=True)
        blurred = np.broadcast_to(means, tiles.shape).reshape(ph, pw, c)
        return blurred[:h, :w, :]

    def degrade_pixels(self, pixels: np.ndarray, detail_scale: float, levels: int) -> np.ndarray:
        """Apply the distortion implied by ``detail_scale`` and ``levels``."""
        block = max(1, int(round(1.0 / max(detail_scale, _MIN_DETAIL_SCALE))))
        degraded = self._block_average(np.asarray(pixels, dtype=np.float32), block)
        if levels < 256:
            degraded = np.round(degraded * (levels - 1)) / (levels - 1)
        return np.clip(degraded, 0.0, 1.0).astype(np.float32)

    def decode(self, frame: Frame, compressed: CompressedFrame) -> Frame:
        """Return the frame as it would look after encode/decode."""
        return frame.with_pixels(
            self.degrade_pixels(frame.pixels, compressed.detail_scale, compressed.quantization_levels)
        )

    def transcode_stream(
        self, stream: VideoStream, target_bitrate: float
    ) -> tuple[list[Frame], EncodedSegment]:
        """Encode the whole stream and return the decoded (degraded) frames.

        This is what the "compress everything" baseline sends to the cloud:
        every frame, but at whatever quality the bitrate allows.
        """
        segment = self.encode_stream(stream, target_bitrate)
        decoded = [self.decode(frame, comp) for frame, comp in zip(stream, segment.frames)]
        return decoded, segment
