"""Procedural surveillance-scene rendering.

The FilterForward evaluation videos are wide-angle, fixed-view urban scenes:
a static background (sky, trees, buildings, road, sidewalk, crosswalk) with
small moving foreground objects (pedestrians, vehicles).  This module renders
such scenes procedurally and deterministically.  Objects are intentionally
small relative to the frame — the paper's central difficulty — and the
"people with red" task is expressed through object torso colour.

All rendering is vectorized NumPy; there is no per-pixel Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

import numpy as np

__all__ = ["ObjectKind", "MovingObject", "Background", "render_scene"]


class ObjectKind(str, Enum):
    """Foreground object categories that appear in the synthetic scenes."""

    PEDESTRIAN = "pedestrian"
    RED_PEDESTRIAN = "red_pedestrian"
    CAR = "car"
    CYCLIST = "cyclist"

    @property
    def is_person(self) -> bool:
        """Whether the object is rendered with a person silhouette."""
        return self in (ObjectKind.PEDESTRIAN, ObjectKind.RED_PEDESTRIAN)


# Torso colours per object kind (RGB in [0, 1]).  Regular pedestrians get a
# muted palette; "people with red" wear saturated red, which is what the
# Roadway task detects.
_TORSO_PALETTES: dict[ObjectKind, list[tuple[float, float, float]]] = {
    ObjectKind.PEDESTRIAN: [
        (0.20, 0.30, 0.55),
        (0.25, 0.45, 0.30),
        (0.35, 0.35, 0.38),
        (0.55, 0.50, 0.30),
        (0.15, 0.15, 0.20),
    ],
    ObjectKind.RED_PEDESTRIAN: [
        (0.85, 0.10, 0.10),
        (0.90, 0.15, 0.20),
        (0.80, 0.05, 0.15),
    ],
    ObjectKind.CYCLIST: [
        (0.90, 0.80, 0.15),
        (0.20, 0.60, 0.80),
    ],
    ObjectKind.CAR: [
        (0.70, 0.70, 0.75),
        (0.20, 0.20, 0.25),
        (0.55, 0.10, 0.10),
        (0.15, 0.25, 0.50),
        (0.85, 0.85, 0.85),
    ],
}


@dataclass
class MovingObject:
    """A foreground object following a linear path across the scene.

    Positions are in pixels; ``position_at`` returns the object's top-left
    corner at a given frame.  Objects exist only between ``start_frame``
    (inclusive) and ``end_frame`` (exclusive).
    """

    kind: ObjectKind
    start_frame: int
    end_frame: int
    start_position: tuple[float, float]
    velocity: tuple[float, float]
    size: tuple[int, int]
    color: tuple[float, float, float]
    object_id: int = 0

    def __post_init__(self) -> None:
        if self.end_frame <= self.start_frame:
            raise ValueError("end_frame must be greater than start_frame")
        if self.size[0] <= 0 or self.size[1] <= 0:
            raise ValueError("size must be positive")

    def active_at(self, frame_index: int) -> bool:
        """Whether the object is on screen at ``frame_index``."""
        return self.start_frame <= frame_index < self.end_frame

    def position_at(self, frame_index: int) -> tuple[float, float]:
        """Top-left (x, y) pixel position at ``frame_index``."""
        dt = frame_index - self.start_frame
        return (
            self.start_position[0] + self.velocity[0] * dt,
            self.start_position[1] + self.velocity[1] * dt,
        )

    def bounding_box(self, frame_index: int) -> tuple[int, int, int, int]:
        """Integer bounding box ``(x0, y0, x1, y1)`` at ``frame_index``."""
        x, y = self.position_at(frame_index)
        return (int(round(x)), int(round(y)), int(round(x)) + self.size[0], int(round(y)) + self.size[1])

    def center_at(self, frame_index: int) -> tuple[float, float]:
        """Center (x, y) at ``frame_index``."""
        x, y = self.position_at(frame_index)
        return (x + self.size[0] / 2.0, y + self.size[1] / 2.0)

    @staticmethod
    def pick_color(kind: ObjectKind, rng: np.random.Generator) -> tuple[float, float, float]:
        """Draw a torso/body colour for ``kind`` from its palette."""
        palette = _TORSO_PALETTES[kind]
        return palette[int(rng.integers(len(palette)))]


@dataclass
class Background:
    """Static wide-angle urban background.

    The layout mimics the paper's traffic-camera viewpoints from top to
    bottom: sky, tree line, building band, road (with lane markings and a
    crosswalk), and sidewalk.  The band boundaries are exposed so dataset
    builders can define task regions (e.g. "the crosswalk" or "the street
    and sidewalk area").
    """

    width: int
    height: int
    seed: int = 0
    image: np.ndarray = field(init=False, repr=False)
    sky_end: int = field(init=False)
    trees_end: int = field(init=False)
    buildings_end: int = field(init=False)
    road_end: int = field(init=False)
    crosswalk_x: tuple[int, int] = field(init=False)

    def __post_init__(self) -> None:
        if self.width < 16 or self.height < 16:
            raise ValueError("Background requires at least a 16x16 canvas")
        rng = np.random.default_rng(self.seed)
        h, w = self.height, self.width
        img = np.zeros((h, w, 3), dtype=np.float32)

        self.sky_end = int(0.22 * h)
        self.trees_end = int(0.32 * h)
        self.buildings_end = int(0.45 * h)
        self.road_end = int(0.85 * h)

        # Sky: vertical gradient.
        sky_rows = np.linspace(0.75, 0.55, self.sky_end)[:, None]
        img[: self.sky_end] = np.stack(
            [0.65 * sky_rows, 0.78 * sky_rows, 0.95 * np.ones_like(sky_rows)], axis=-1
        ) * np.ones((1, w, 1), dtype=np.float32)

        # Trees: green with texture.
        tree_band = img[self.sky_end : self.trees_end]
        tree_band[:] = np.array([0.18, 0.35, 0.16], dtype=np.float32)
        tree_band += 0.05 * rng.standard_normal(tree_band.shape).astype(np.float32)

        # Buildings: brick-ish blocks.
        building_band = img[self.trees_end : self.buildings_end]
        building_band[:] = np.array([0.45, 0.38, 0.34], dtype=np.float32)
        n_buildings = max(3, w // 24)
        edges = np.sort(rng.integers(0, w, size=n_buildings))
        for i, edge in enumerate(edges):
            shade = 0.9 + 0.2 * ((i % 3) - 1) * 0.1
            building_band[:, edge:] *= shade

        # Road: asphalt with lane marking and a crosswalk.
        road_band = img[self.buildings_end : self.road_end]
        road_band[:] = np.array([0.32, 0.32, 0.34], dtype=np.float32)
        lane_y = (self.buildings_end + self.road_end) // 2 - self.buildings_end
        road_band[lane_y : lane_y + max(1, h // 200), :] = 0.85
        # Crosswalk: vertical striped band in the middle of the road.
        cw_x0 = int(0.42 * w)
        cw_x1 = int(0.58 * w)
        self.crosswalk_x = (cw_x0, cw_x1)
        stripe = max(2, w // 128)
        for x in range(cw_x0, cw_x1, 2 * stripe):
            road_band[:, x : x + stripe] = 0.78

        # Sidewalk: light concrete.
        sidewalk = img[self.road_end :]
        sidewalk[:] = np.array([0.55, 0.54, 0.52], dtype=np.float32)
        sidewalk += 0.02 * rng.standard_normal(sidewalk.shape).astype(np.float32)

        self.image = np.clip(img, 0.0, 1.0)

    @property
    def road_rows(self) -> tuple[int, int]:
        """Row range ``[start, end)`` of the road band."""
        return (self.buildings_end, self.road_end)

    @property
    def sidewalk_rows(self) -> tuple[int, int]:
        """Row range ``[start, end)`` of the sidewalk band."""
        return (self.road_end, self.height)

    @property
    def crosswalk_region(self) -> tuple[int, int, int, int]:
        """Crosswalk region ``(x0, y0, x1, y1)`` in pixels."""
        return (self.crosswalk_x[0], self.buildings_end, self.crosswalk_x[1], self.road_end)


def _draw_person(
    canvas: np.ndarray, box: tuple[int, int, int, int], torso_color: tuple[float, float, float]
) -> None:
    """Draw a small person silhouette (head, torso, legs) into ``canvas``."""
    x0, y0, x1, y1 = box
    h, w = canvas.shape[:2]
    x0c, x1c = max(0, x0), min(w, x1)
    y0c, y1c = max(0, y0), min(h, y1)
    if x1c <= x0c or y1c <= y0c:
        return
    total_h = y1 - y0
    head_end = y0 + max(1, total_h // 4)
    torso_end = y0 + max(2, (2 * total_h) // 3)
    skin = np.array([0.85, 0.70, 0.60], dtype=np.float32)
    legs = np.array([0.12, 0.12, 0.15], dtype=np.float32)
    torso = np.asarray(torso_color, dtype=np.float32)
    canvas[y0c:min(head_end, y1c), x0c:x1c] = skin
    if head_end < y1c:
        canvas[max(head_end, y0c):min(torso_end, y1c), x0c:x1c] = torso
    if torso_end < y1c:
        canvas[max(torso_end, y0c):y1c, x0c:x1c] = legs


def _draw_car(
    canvas: np.ndarray, box: tuple[int, int, int, int], body_color: tuple[float, float, float]
) -> None:
    """Draw a simple vehicle (body + darker window band) into ``canvas``."""
    x0, y0, x1, y1 = box
    h, w = canvas.shape[:2]
    x0c, x1c = max(0, x0), min(w, x1)
    y0c, y1c = max(0, y0), min(h, y1)
    if x1c <= x0c or y1c <= y0c:
        return
    body = np.asarray(body_color, dtype=np.float32)
    canvas[y0c:y1c, x0c:x1c] = body
    window_y1 = y0 + max(1, (y1 - y0) // 3)
    canvas[y0c:min(window_y1, y1c), x0c:x1c] = body * 0.4


def render_scene(
    background: Background,
    objects: Sequence[MovingObject],
    frame_index: int,
    noise_std: float = 0.01,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Render one frame: background plus all active objects plus sensor noise.

    Parameters
    ----------
    background:
        The static scene background.
    objects:
        All moving objects in the video; only those active at ``frame_index``
        are drawn.
    frame_index:
        Which frame to render.
    noise_std:
        Standard deviation of additive per-pixel sensor noise.
    rng:
        Generator for the sensor noise; defaults to one seeded by the frame
        index, so rendering is deterministic per frame.

    Returns
    -------
    numpy.ndarray
        ``(height, width, 3)`` float32 RGB pixels in ``[0, 1]``.
    """
    canvas = background.image.copy()
    for obj in objects:
        if not obj.active_at(frame_index):
            continue
        box = obj.bounding_box(frame_index)
        if obj.kind.is_person or obj.kind is ObjectKind.CYCLIST:
            _draw_person(canvas, box, obj.color)
        else:
            _draw_car(canvas, box, obj.color)
    if noise_std > 0:
        noise_rng = rng or np.random.default_rng(background.seed * 1_000_003 + frame_index)
        canvas = canvas + noise_std * noise_rng.standard_normal(canvas.shape).astype(np.float32)
    return np.clip(canvas, 0.0, 1.0)
