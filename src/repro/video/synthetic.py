"""Synthetic surveillance-video generation.

:class:`SurveillanceSceneGenerator` produces a deterministic, annotated video
stream that statistically mirrors the paper's evaluation feeds: a fixed
wide-angle view, small moving objects, and rare labelled events.  Each
generated video comes with per-frame ground truth for the two paper tasks:

* ``pedestrian_in_crosswalk`` — the Jackson dataset's *Pedestrian* task:
  a frame is positive when any person's centre lies inside the crosswalk.
* ``person_with_red`` — the Roadway dataset's *People with red* task:
  a frame is positive when a person wearing red is in the street/sidewalk
  region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.video.annotations import FrameLabels
from repro.video.scenes import Background, MovingObject, ObjectKind, render_scene
from repro.video.stream import InMemoryVideoStream

__all__ = ["SceneConfig", "SurveillanceSceneGenerator", "TASK_PEDESTRIAN", "TASK_PEOPLE_WITH_RED"]

TASK_PEDESTRIAN = "pedestrian_in_crosswalk"
TASK_PEOPLE_WITH_RED = "person_with_red"


@dataclass
class SceneConfig:
    """Configuration of a synthetic surveillance scene.

    Spawn rates are expressed as the expected number of new objects of each
    kind per frame; keeping them small makes events rare, which is the regime
    FilterForward targets ("relevant events are rare", Section 1).
    """

    width: int = 256
    height: int = 144
    frame_rate: float = 15.0
    num_frames: int = 600
    seed: int = 0
    pedestrian_rate: float = 0.010
    red_pedestrian_rate: float = 0.006
    car_rate: float = 0.02
    cyclist_rate: float = 0.004
    crossing_fraction: float = 0.45
    person_height_fraction: float = 0.07
    car_height_fraction: float = 0.05
    person_speed_range: tuple[float, float] = (1.5, 3.0)
    vehicle_speed_range: tuple[float, float] = (2.0, 5.0)
    max_person_duration: int | None = None
    noise_std: float = 0.01
    object_seed: int | None = None

    def __post_init__(self) -> None:
        if self.width < 32 or self.height < 32:
            raise ValueError("Scene must be at least 32x32 pixels")
        if self.num_frames <= 0:
            raise ValueError("num_frames must be positive")
        if self.frame_rate <= 0:
            raise ValueError("frame_rate must be positive")
        for name in ("pedestrian_rate", "red_pedestrian_rate", "car_rate", "cyclist_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.crossing_fraction <= 1.0:
            raise ValueError("crossing_fraction must be in [0, 1]")
        for name in ("person_speed_range", "vehicle_speed_range"):
            low, high = getattr(self, name)
            if low <= 0 or high < low:
                raise ValueError(f"{name} must be an increasing pair of positive speeds")
        if self.max_person_duration is not None and self.max_person_duration < 2:
            raise ValueError("max_person_duration must be at least 2 frames")


@dataclass
class GeneratedScene:
    """The output of :meth:`SurveillanceSceneGenerator.generate`."""

    stream: InMemoryVideoStream
    labels: dict[str, FrameLabels]
    objects: list[MovingObject]
    background: Background
    config: SceneConfig = field(repr=False, default=None)


class SurveillanceSceneGenerator:
    """Generates annotated synthetic surveillance videos."""

    def __init__(self, config: SceneConfig) -> None:
        self.config = config
        self.background = Background(config.width, config.height, seed=config.seed)

    # -- object spawning ---------------------------------------------------
    def spawn_objects(self, rng: np.random.Generator | None = None) -> list[MovingObject]:
        """Spawn moving objects across the whole timeline.

        Pedestrians either walk along the sidewalk or cross the road through
        the crosswalk (controlled by ``crossing_fraction``); cars and cyclists
        travel along the road.  Motion is linear, matching the short
        dwell times of objects in wide-angle traffic footage.
        """
        cfg = self.config
        default_seed = cfg.object_seed if cfg.object_seed is not None else cfg.seed + 1
        rng = rng or np.random.default_rng(default_seed)
        bg = self.background
        objects: list[MovingObject] = []
        object_id = 0
        person_h = max(6, int(cfg.person_height_fraction * cfg.height))
        person_w = max(2, person_h // 3)
        car_h = max(5, int(cfg.car_height_fraction * cfg.height))
        car_w = car_h * 3

        rates = {
            ObjectKind.PEDESTRIAN: cfg.pedestrian_rate,
            ObjectKind.RED_PEDESTRIAN: cfg.red_pedestrian_rate,
            ObjectKind.CAR: cfg.car_rate,
            ObjectKind.CYCLIST: cfg.cyclist_rate,
        }
        for kind, rate in rates.items():
            if rate <= 0:
                continue
            n_spawns = rng.poisson(rate * cfg.num_frames)
            spawn_frames = np.sort(rng.integers(0, cfg.num_frames, size=n_spawns))
            for start in spawn_frames:
                object_id += 1
                color = MovingObject.pick_color(kind, rng)
                if kind is ObjectKind.CAR:
                    obj = self._spawn_vehicle(kind, int(start), (car_w, car_h), color, rng, object_id)
                elif kind is ObjectKind.CYCLIST:
                    obj = self._spawn_vehicle(
                        kind, int(start), (person_w, person_h), color, rng, object_id
                    )
                else:
                    crossing = rng.random() < cfg.crossing_fraction
                    obj = self._spawn_person(
                        kind, int(start), (person_w, person_h), color, crossing, rng, object_id
                    )
                if obj is not None:
                    objects.append(obj)
        return objects

    def _spawn_person(
        self,
        kind: ObjectKind,
        start_frame: int,
        size: tuple[int, int],
        color: tuple[float, float, float],
        crossing: bool,
        rng: np.random.Generator,
        object_id: int,
    ) -> MovingObject | None:
        cfg = self.config
        bg = self.background
        speed = rng.uniform(*cfg.person_speed_range) * max(0.5, cfg.width / 256.0)
        if crossing:
            # Walk vertically through the crosswalk from sidewalk to buildings.
            cw_x0, cw_y0, cw_x1, cw_y1 = bg.crosswalk_region
            x = rng.uniform(cw_x0, max(cw_x0 + 1, cw_x1 - size[0]))
            going_up = rng.random() < 0.5
            if going_up:
                y0, vy = float(cfg.height - size[1] - 1), -speed
                travel = (y0 - cw_y0) / speed
            else:
                y0, vy = float(cw_y0 - size[1]), speed
                travel = (cfg.height - y0) / speed
            duration = int(np.ceil(travel)) + 1
            duration = self._cap_person_duration(duration)
            return MovingObject(
                kind=kind,
                start_frame=start_frame,
                end_frame=min(start_frame + duration, cfg.num_frames + duration),
                start_position=(x, y0),
                velocity=(rng.uniform(-0.1, 0.1), vy),
                size=size,
                color=color,
                object_id=object_id,
            )
        # Walk horizontally along the sidewalk.  The walk is capped by
        # ``max_person_duration`` (people step into doorways, parked cars,
        # etc.), which is what keeps events short relative to the video.
        sw_y0, sw_y1 = bg.sidewalk_rows
        y = rng.uniform(sw_y0, max(sw_y0 + 1, sw_y1 - size[1]))
        left_to_right = rng.random() < 0.5
        duration = int(np.ceil((cfg.width + 2 * size[0]) / speed)) + 1
        duration = self._cap_person_duration(duration)
        travel_px = duration * speed
        if left_to_right:
            x0 = float(rng.uniform(-size[0], max(1.0, cfg.width - travel_px)))
            vx = speed
        else:
            x0 = float(rng.uniform(min(cfg.width - 1.0, travel_px - size[0]), cfg.width))
            vx = -speed
        return MovingObject(
            kind=kind,
            start_frame=start_frame,
            end_frame=start_frame + duration,
            start_position=(x0, y),
            velocity=(vx, 0.0),
            size=size,
            color=color,
            object_id=object_id,
        )

    def _cap_person_duration(self, duration: int) -> int:
        """Apply the configured visible-duration cap for people."""
        cap = self.config.max_person_duration
        return duration if cap is None else min(duration, int(cap))

    def _spawn_vehicle(
        self,
        kind: ObjectKind,
        start_frame: int,
        size: tuple[int, int],
        color: tuple[float, float, float],
        rng: np.random.Generator,
        object_id: int,
    ) -> MovingObject:
        cfg = self.config
        road_y0, road_y1 = self.background.road_rows
        y = rng.uniform(road_y0, max(road_y0 + 1, road_y1 - size[1]))
        speed = rng.uniform(*cfg.vehicle_speed_range) * max(0.5, cfg.width / 256.0)
        left_to_right = rng.random() < 0.5
        x0 = -float(size[0]) if left_to_right else float(cfg.width)
        vx = speed if left_to_right else -speed
        duration = int(np.ceil((cfg.width + 2 * size[0]) / speed)) + 1
        return MovingObject(
            kind=kind,
            start_frame=start_frame,
            end_frame=start_frame + duration,
            start_position=(x0, y),
            velocity=(vx, 0.0),
            size=size,
            color=color,
            object_id=object_id,
        )

    # -- labelling ---------------------------------------------------------
    def labels_for_task(self, objects: list[MovingObject], task: str) -> FrameLabels:
        """Per-frame ground truth for one of the supported tasks."""
        cfg = self.config
        labels = np.zeros(cfg.num_frames, dtype=np.int8)
        if task == TASK_PEDESTRIAN:
            region = self.background.crosswalk_region
            kinds = (ObjectKind.PEDESTRIAN, ObjectKind.RED_PEDESTRIAN)
        elif task == TASK_PEOPLE_WITH_RED:
            x0, y0 = 0, self.background.road_rows[0]
            x1, y1 = cfg.width, cfg.height
            region = (x0, y0, x1, y1)
            kinds = (ObjectKind.RED_PEDESTRIAN,)
        else:
            raise ValueError(
                f"Unknown task {task!r}; expected {TASK_PEDESTRIAN!r} or {TASK_PEOPLE_WITH_RED!r}"
            )
        rx0, ry0, rx1, ry1 = region
        for obj in objects:
            if obj.kind not in kinds:
                continue
            start = max(0, obj.start_frame)
            end = min(cfg.num_frames, obj.end_frame)
            if end <= start:
                continue
            t = np.arange(start, end)
            cx = obj.start_position[0] + obj.size[0] / 2.0 + obj.velocity[0] * (t - obj.start_frame)
            cy = obj.start_position[1] + obj.size[1] / 2.0 + obj.velocity[1] * (t - obj.start_frame)
            inside = (cx >= rx0) & (cx < rx1) & (cy >= ry0) & (cy < ry1)
            labels[t[inside]] = 1
        return FrameLabels(labels, task=task)

    # -- rendering ---------------------------------------------------------
    def render_stream(self, objects: list[MovingObject]) -> InMemoryVideoStream:
        """Render every frame of the configured timeline."""
        cfg = self.config
        arrays = [
            render_scene(self.background, objects, i, noise_std=cfg.noise_std)
            for i in range(cfg.num_frames)
        ]
        return InMemoryVideoStream.from_arrays(arrays, cfg.frame_rate)

    def generate(self, tasks: tuple[str, ...] = (TASK_PEDESTRIAN, TASK_PEOPLE_WITH_RED)) -> GeneratedScene:
        """Spawn objects, render the video, and label it for ``tasks``."""
        objects = self.spawn_objects()
        stream = self.render_stream(objects)
        labels = {task: self.labels_for_task(objects, task) for task in tasks}
        return GeneratedScene(
            stream=stream,
            labels=labels,
            objects=objects,
            background=self.background,
            config=self.config,
        )
