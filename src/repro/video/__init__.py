"""Video substrate: frames, streams, synthetic datasets, and codec simulation.

The paper evaluates on two proprietary camera-feed datasets (Jackson and
Roadway).  Those feeds are not available, so this subpackage provides a
procedural surveillance-scene generator and dataset builders that reproduce
the statistical properties the evaluation depends on: wide-angle views, small
moving objects, rare labelled events, and temporal continuity.  It also
provides an H.264-style rate-distortion codec simulator used both for the
"compress everything" baseline and for re-encoding matched event frames.
"""

from repro.video.annotations import (
    EventAnnotation,
    FrameLabels,
    events_to_frame_labels,
    frame_labels_to_events,
)
from repro.video.codec import CompressedFrame, EncodedSegment, H264Simulator
from repro.video.datasets import (
    DatasetSpec,
    SyntheticDataset,
    make_jackson_like,
    make_roadway_like,
)
from repro.video.frame import Frame
from repro.video.scenes import (
    Background,
    MovingObject,
    ObjectKind,
    render_scene,
)
from repro.video.stream import InMemoryVideoStream, VideoStream
from repro.video.synthetic import SceneConfig, SurveillanceSceneGenerator

__all__ = [
    "Background",
    "CompressedFrame",
    "DatasetSpec",
    "EncodedSegment",
    "EventAnnotation",
    "Frame",
    "FrameLabels",
    "H264Simulator",
    "InMemoryVideoStream",
    "MovingObject",
    "ObjectKind",
    "SceneConfig",
    "SurveillanceSceneGenerator",
    "SyntheticDataset",
    "VideoStream",
    "events_to_frame_labels",
    "frame_labels_to_events",
    "make_jackson_like",
    "make_roadway_like",
    "render_scene",
]
