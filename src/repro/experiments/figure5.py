"""Figure 5: filtering throughput versus number of concurrent classifiers.

The paper compares the frame rate of FilterForward's three microclassifier
architectures against NoScope-style discrete classifiers and multiple full
MobileNets as the number of concurrent classifiers grows from 1 to 50, on a
quad-core CPU at 1920x1080.  The reproduction evaluates the calibrated
analytic throughput model at paper scale (see
:mod:`repro.perf.throughput_model`); the wall-clock scaling of the NumPy
implementation itself is exercised separately by the micro-benchmarks in
``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perf.throughput_model import ThroughputModel

__all__ = ["Figure5Result", "run_figure5", "summarize_figure5", "PAPER_CLASSIFIER_COUNTS"]

PAPER_CLASSIFIER_COUNTS = [1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50]


@dataclass
class Figure5Result:
    """Throughput series (frames per second) per filtering approach."""

    classifier_counts: list[int]
    series: dict[str, np.ndarray] = field(default_factory=dict)

    def as_rows(self) -> list[dict[str, float]]:
        """One row per classifier count, matching the figure's x-axis."""
        rows = []
        for i, n in enumerate(self.classifier_counts):
            row: dict[str, float] = {"num_classifiers": float(n)}
            for name, values in self.series.items():
                if name == "num_classifiers":
                    continue
                row[name] = float(values[i])
            rows.append(row)
        return rows


def run_figure5(
    model: ThroughputModel | None = None,
    classifier_counts: list[int] | None = None,
) -> Figure5Result:
    """Evaluate the throughput model over the paper's classifier-count sweep."""
    model = model or ThroughputModel()
    counts = classifier_counts or PAPER_CLASSIFIER_COUNTS
    series = model.sweep(counts)
    return Figure5Result(classifier_counts=list(counts), series=series)


def summarize_figure5(result: Figure5Result, model: ThroughputModel | None = None) -> dict[str, float]:
    """Headline numbers from Section 4.4.

    * ``break_even_classifiers`` — smallest count at which the fastest
      FilterForward architecture beats the DCs (paper: 3-4);
    * ``speedup_at_20`` / ``speedup_at_50`` — best FilterForward throughput
      over DC throughput at 20 and 50 classifiers (paper: 3.0-4.1x and up to
      6.1x);
    * ``single_classifier_ratio_vs_dc`` / ``..._vs_mobilenet`` — the
      single-classifier slowdowns, over the FF architectures (paper:
      0.32-0.34x and 0.83-0.90x);
    * ``mobilenet_oom_classifiers`` — where the MobileNet baseline runs out
      of memory (paper: beyond 30).
    """
    model = model or ThroughputModel()
    counts = np.asarray(result.classifier_counts)
    ff_series = {
        name: values
        for name, values in result.series.items()
        if name.startswith("filterforward_")
    }
    dc = result.series["discrete_classifiers"]
    mobilenets = result.series["multiple_mobilenets"]

    def at(n: int, series: np.ndarray) -> float:
        idx = int(np.argmin(np.abs(counts - n)))
        return float(series[idx])

    def best_ff(n: int) -> float:
        return max(at(n, values) for values in ff_series.values())

    architectures = [name.removeprefix("filterforward_") for name in ff_series]
    break_even = min(model.break_even_classifiers(arch) for arch in architectures)
    oom_counts = counts[np.isnan(mobilenets)]
    return {
        "break_even_classifiers": float(break_even),
        "speedup_at_20": best_ff(20) / at(20, dc),
        "speedup_at_50": best_ff(50) / at(50, dc),
        "single_classifier_ratio_vs_dc": best_ff(1) / at(1, dc),
        "single_classifier_ratio_vs_mobilenet": best_ff(1) / at(1, mobilenets),
        "mobilenet_oom_classifiers": float(oom_counts.min()) if oom_counts.size else float("inf"),
    }
