"""Figure/Table 3: dataset details.

Figure 3b of the paper tabulates the attributes of the Jackson and Roadway
datasets (resolution, frame rate, frame count, task, event frames, unique
events) and Figure 3c the tasks' rectangular crop regions.  This experiment
generates the synthetic stand-in datasets and reports the same attributes
side by side with the paper's values, so the substitution's statistics are
auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.video.datasets import (
    PAPER_JACKSON,
    PAPER_ROADWAY,
    SyntheticDataset,
    make_jackson_like,
    make_roadway_like,
)

__all__ = ["Table3Row", "run_table3"]


@dataclass(frozen=True)
class Table3Row:
    """One dataset's attributes: paper values versus generated values."""

    name: str
    paper_resolution: str
    generated_resolution: str
    frame_rate: float
    paper_frames: int
    generated_frames: int
    task: str
    paper_event_frames: int
    generated_event_frames: int
    paper_unique_events: int
    generated_unique_events: int
    paper_event_fraction: float
    generated_event_fraction: float
    crop: tuple[int, int, int, int]

    @property
    def event_rarity_preserved(self) -> bool:
        """Whether the generated event-frame fraction is within 3x of the paper's."""
        if self.generated_event_fraction <= 0:
            return False
        ratio = self.paper_event_fraction / self.generated_event_fraction
        return 1 / 3 <= ratio <= 3


def _row(name: str, paper: dict, dataset: SyntheticDataset) -> Table3Row:
    generated_frames = len(dataset.train_stream) + len(dataset.test_stream)
    generated_event_frames = dataset.train_labels.num_positive + dataset.test_labels.num_positive
    generated_events = len(dataset.train_labels.events()) + len(dataset.test_labels.events())
    return Table3Row(
        name=name,
        paper_resolution=f"{paper['resolution'][0]} x {paper['resolution'][1]}",
        generated_resolution=f"{dataset.spec.resolution[0]} x {dataset.spec.resolution[1]}",
        frame_rate=dataset.spec.frame_rate,
        paper_frames=paper["frames"],
        generated_frames=generated_frames,
        task=paper["task"],
        paper_event_frames=paper["event_frames"],
        generated_event_frames=generated_event_frames,
        paper_unique_events=paper["unique_events"],
        generated_unique_events=generated_events,
        paper_event_fraction=paper["event_frames"] / paper["frames"],
        generated_event_fraction=(generated_event_frames / generated_frames if generated_frames else 0.0),
        crop=dataset.spec.crop,
    )


def run_table3(
    jackson: SyntheticDataset | None = None,
    roadway: SyntheticDataset | None = None,
    num_frames: int = 600,
) -> list[Table3Row]:
    """Generate (or accept) both datasets and produce the Table 3 comparison rows."""
    jackson = jackson or make_jackson_like(num_frames=num_frames)
    roadway = roadway or make_roadway_like(num_frames=num_frames)
    return [
        _row("jackson", PAPER_JACKSON, jackson),
        _row("roadway", PAPER_ROADWAY, roadway),
    ]
