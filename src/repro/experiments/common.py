"""Shared experiment infrastructure.

:class:`ExperimentContext` owns everything the accuracy experiments
(Figures 4 and 7) need for one dataset: the base DNN and feature extractor
at the dataset's (scaled) resolution, cached per-split feature maps, trained
microclassifiers and discrete classifiers, and event-level evaluation.

The executable experiments run at a reduced spatial scale (see DESIGN.md's
scale-down policy); the base-DNN tap layer for each microclassifier is
chosen with the paper's own layer-selection heuristic applied to the scaled
data, while paper-scale costs are always reported through
:class:`repro.perf.cost_model.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.baselines.discrete_classifier import DiscreteClassifier, DiscreteClassifierConfig
from repro.core.architectures import WindowedLocalizedBinaryClassifierMC, build_microclassifier
from repro.core.layer_selection import select_input_layer
from repro.core.microclassifier import MicroClassifier, MicroClassifierConfig
from repro.core.smoothing import KVotingSmoother
from repro.core.training import TrainingConfig, train_classifier
from repro.features.base_dnn import build_mobilenet_like
from repro.features.extractor import FeatureExtractor, FeatureMapCrop
from repro.metrics.event_metrics import EventF1Breakdown, event_f1_score
from repro.video.datasets import SyntheticDataset
from repro.video.stream import VideoStream

__all__ = ["TrainedClassifier", "ExperimentContext"]

# Candidate tap layers offered to the layer-selection heuristic, ordered from
# shallow (fine spatial detail) to deep (more semantic).
_CANDIDATE_TAPS = ["conv2_1/sep", "conv2_2/sep", "conv3_2/sep", "conv4_2/sep", "conv5_6/sep"]


@dataclass
class TrainedClassifier:
    """A trained classifier plus its evaluation on the test split."""

    name: str
    kind: str
    classifier: object
    marginal_multiply_adds: int
    breakdown: EventF1Breakdown
    probabilities: np.ndarray
    smoothed: np.ndarray

    @property
    def event_f1(self) -> float:
        """Event F1 score on the test split."""
        return self.breakdown.f1


class ExperimentContext:
    """Everything needed to train and evaluate classifiers on one dataset."""

    def __init__(
        self,
        dataset: SyntheticDataset,
        alpha: float = 0.25,
        object_height_fraction: float = 0.07,
        smoothing_window: int = 5,
        smoothing_votes: int = 2,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.alpha = float(alpha)
        self.seed = int(seed)
        self.smoother = KVotingSmoother(window=smoothing_window, votes=smoothing_votes)
        width, height = dataset.spec.resolution
        self.frame_shape = (height, width, 3)
        self.rng = np.random.default_rng(seed)
        self.base_dnn = build_mobilenet_like(self.frame_shape, alpha=alpha, rng=self.rng)
        object_height = max(4, int(round(object_height_fraction * height)))
        layer_shapes = {
            name: shape
            for name, shape in self.base_dnn.layer_output_shapes().items()
            if name in _CANDIDATE_TAPS
        }
        # The paper's heuristic, applied to the scaled data: every
        # microclassifier taps the layer whose spatial reduction matches the
        # target object size.  (At paper scale this resolves to conv4_2/sep
        # and conv5_6/sep; at 1/8 scale the objects are 1/8 as tall, so the
        # heuristic selects a proportionally shallower layer.)
        selection = select_input_layer(height, object_height, layer_shapes)
        self.localized_tap = selection.layer
        self.full_frame_tap = selection.layer
        self.extractor = FeatureExtractor(
            self.base_dnn, [self.localized_tap, self.full_frame_tap], cache_size=8
        )
        self._feature_cache: dict[tuple[int, str], np.ndarray] = {}

    # -- feature collection -------------------------------------------------
    def crop(self) -> FeatureMapCrop:
        """The dataset task's rectangular crop as a feature-map crop."""
        x0, y0, x1, y1 = self.dataset.spec.crop
        return FeatureMapCrop(x0, y0, x1, y1)

    def feature_maps(self, stream: VideoStream, layer: str) -> np.ndarray:
        """All frames' feature maps for ``layer`` (cached per stream+layer).

        The base DNN runs once per frame; both tapped layers are collected in
        the same pass and cached as float32, so training several classifiers
        on the same dataset never repeats feature extraction.
        """
        key = (id(stream), layer)
        cached = self._feature_cache.get(key)
        if cached is not None:
            return cached
        collected: dict[str, list[np.ndarray]] = {tap: [] for tap in self.extractor.tap_layers}
        for frame in stream:
            activations = self.extractor.extract_pixels(frame.pixels)
            for tap in collected:
                collected[tap].append(activations[tap].astype(np.float32))
        for tap, maps in collected.items():
            self._feature_cache[(id(stream), tap)] = np.stack(maps, axis=0)
        return self._feature_cache[key]

    def cropped_feature_maps(self, stream: VideoStream, layer: str, crop: FeatureMapCrop | None) -> np.ndarray:
        """Feature maps for ``layer``, cropped to the task region if requested."""
        maps = self.feature_maps(stream, layer)
        if crop is None:
            return maps
        height, width = self.frame_shape[:2]
        y0, y1, x0, x1 = crop.to_feature_coords((height, width), maps.shape[1:3])
        return maps[:, y0:y1, x0:x1, :]

    def pixels(self, stream: VideoStream) -> np.ndarray:
        """Raw pixels of every frame as one ``(N, H, W, 3)`` batch."""
        return np.stack([frame.pixels for frame in stream], axis=0).astype(np.float64)

    # -- training -----------------------------------------------------------
    def train_microclassifier(
        self,
        architecture: str,
        use_crop: bool = True,
        training: TrainingConfig | None = None,
        threshold: float = 0.5,
        augment_flip: bool = True,
        calibrate_threshold: bool = True,
        **mc_kwargs,
    ) -> TrainedClassifier:
        """Train one microclassifier on the train split and evaluate it on the test split.

        ``augment_flip`` horizontally mirrors the training feature maps (the
        scenes are left/right symmetric for both tasks), which compensates
        for the scaled datasets containing far fewer training events than the
        paper's six-hour videos.  ``calibrate_threshold`` picks the decision
        threshold that maximizes event F1 on the *training* split.
        """
        layer = self.full_frame_tap if architecture == "full_frame" else self.localized_tap
        crop = self.crop() if (use_crop and architecture != "full_frame") else None
        config = MicroClassifierConfig(
            name=f"{self.dataset.spec.name}_{architecture}",
            input_layer=layer,
            crop=crop,
            threshold=threshold,
        )
        train_maps = self.cropped_feature_maps(self.dataset.train_stream, layer, crop)
        train_labels = self.dataset.train_labels.labels
        input_shape = train_maps.shape[1:]
        mc = build_microclassifier(
            architecture, config, input_shape, rng=np.random.default_rng(self.seed + 1), **mc_kwargs
        )
        fit_maps, fit_labels = train_maps, train_labels
        if augment_flip:
            fit_maps = np.concatenate([train_maps, train_maps[:, :, ::-1, :]], axis=0)
            fit_labels = np.concatenate([train_labels, train_labels])
        training = training or TrainingConfig(
            epochs=6.0, batch_size=16, learning_rate=2e-3, seed=self.seed
        )
        train_classifier(mc, fit_maps, fit_labels, training)
        if calibrate_threshold:
            train_probs = self._classifier_probabilities(mc, train_maps)
            best = self._calibrate_threshold(train_probs, train_labels)
            mc.config = replace(mc.config, threshold=best)
        return self._evaluate_microclassifier(mc, architecture, layer, crop)

    @staticmethod
    def _classifier_probabilities(mc: MicroClassifier, feature_maps: np.ndarray) -> np.ndarray:
        if isinstance(mc, WindowedLocalizedBinaryClassifierMC):
            return mc.predict_proba_stream(feature_maps)
        return ExperimentContext._batched_proba(mc.predict_proba_batch, feature_maps)

    def _calibrate_threshold(self, probabilities: np.ndarray, labels: np.ndarray) -> float:
        """Pick the decision threshold maximizing event F1 on a labelled split."""
        candidates = np.unique(np.clip(np.quantile(probabilities, np.linspace(0.05, 0.95, 19)), 0.02, 0.98))
        best_threshold, best_f1 = 0.5, -1.0
        for candidate in candidates:
            decisions = (probabilities >= candidate).astype(np.int8)
            smoothed = self.smoother.smooth(decisions)
            breakdown = event_f1_score(labels, smoothed, return_breakdown=True)
            if breakdown.f1 > best_f1:
                best_threshold, best_f1 = float(candidate), breakdown.f1
        return best_threshold

    def _evaluate_microclassifier(
        self, mc: MicroClassifier, architecture: str, layer: str, crop: FeatureMapCrop | None
    ) -> TrainedClassifier:
        test_maps = self.cropped_feature_maps(self.dataset.test_stream, layer, crop)
        probabilities = self._classifier_probabilities(mc, test_maps)
        return self._score(
            name=mc.name,
            kind=f"microclassifier/{architecture}",
            classifier=mc,
            marginal_multiply_adds=mc.multiply_adds(),
            probabilities=probabilities,
            threshold=mc.config.threshold,
        )

    def train_discrete_classifier(
        self,
        config: DiscreteClassifierConfig,
        use_crop: bool = False,
        training: TrainingConfig | None = None,
        augment_flip: bool = True,
        calibrate_threshold: bool = True,
    ) -> TrainedClassifier:
        """Train a NoScope-style discrete classifier on raw pixels.

        The same augmentation and threshold-calibration options as
        :meth:`train_microclassifier` apply, so the MC/DC comparison in
        Figure 7 is apples to apples.
        """
        train_pixels = self.pixels(self.dataset.train_stream)
        test_pixels = self.pixels(self.dataset.test_stream)
        if use_crop:
            x0, y0, x1, y1 = self.dataset.spec.crop
            train_pixels = train_pixels[:, y0:y1, x0:x1, :]
            test_pixels = test_pixels[:, y0:y1, x0:x1, :]
        train_labels = self.dataset.train_labels.labels
        dc = DiscreteClassifier(config)
        dc.build(train_pixels.shape[1:], rng=np.random.default_rng(self.seed + 2))
        fit_pixels, fit_labels = train_pixels, train_labels
        if augment_flip:
            fit_pixels = np.concatenate([train_pixels, train_pixels[:, :, ::-1, :]], axis=0)
            fit_labels = np.concatenate([train_labels, train_labels])
        training = training or TrainingConfig(
            epochs=6.0, batch_size=16, learning_rate=2e-3, seed=self.seed
        )
        train_classifier(dc, fit_pixels, fit_labels, training)
        threshold = config.threshold
        if calibrate_threshold:
            train_probs = self._batched_proba(dc.predict_proba_batch, train_pixels)
            threshold = self._calibrate_threshold(train_probs, train_labels)
            dc.config = replace(dc.config, threshold=threshold)
        probabilities = self._batched_proba(dc.predict_proba_batch, test_pixels)
        return self._score(
            name=config.name,
            kind="discrete_classifier",
            classifier=dc,
            marginal_multiply_adds=dc.multiply_adds(),
            probabilities=probabilities,
            threshold=threshold,
        )

    # -- evaluation ----------------------------------------------------------
    def _score(
        self,
        name: str,
        kind: str,
        classifier: object,
        marginal_multiply_adds: int,
        probabilities: np.ndarray,
        threshold: float,
    ) -> TrainedClassifier:
        decisions = (probabilities >= threshold).astype(np.int8)
        smoothed = self.smoother.smooth(decisions)
        breakdown = event_f1_score(
            self.dataset.test_labels.labels, smoothed, return_breakdown=True
        )
        return TrainedClassifier(
            name=name,
            kind=kind,
            classifier=classifier,
            marginal_multiply_adds=int(marginal_multiply_adds),
            breakdown=breakdown,
            probabilities=probabilities,
            smoothed=smoothed,
        )

    def evaluate_predictions(self, probabilities: np.ndarray, threshold: float = 0.5) -> EventF1Breakdown:
        """Smooth probabilities at ``threshold`` and score against test labels."""
        decisions = (np.asarray(probabilities) >= threshold).astype(np.int8)
        smoothed = self.smoother.smooth(decisions)
        return event_f1_score(self.dataset.test_labels.labels, smoothed, return_breakdown=True)

    @staticmethod
    def _batched_proba(predict, inputs: np.ndarray, batch_size: int = 32) -> np.ndarray:
        out = np.empty(inputs.shape[0])
        for start in range(0, inputs.shape[0], batch_size):
            chunk = inputs[start : start + batch_size]
            out[start : start + chunk.shape[0]] = predict(chunk)
        return out
