"""Figure 7: marginal compute cost versus event F1 (microclassifiers vs. DCs).

The paper plots, for both datasets, the number of multiply-adds against the
event F1 score of the full-frame object detector MC, the localized binary
classifier MC, and a sweep of discrete classifiers.  MCs sit far to the left
(an order of magnitude cheaper marginally) at comparable or better accuracy.

Accuracy is measured on the scaled executable datasets; the multiply-add
x-axis is reported at both the executable scale (``measured_multiply_adds``)
and the paper's full resolution (``paper_scale_multiply_adds``) via the
analytic cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.discrete_classifier import (
    DiscreteClassifierConfig,
    discrete_classifier_pareto_configs,
)
from repro.experiments.common import ExperimentContext, TrainedClassifier
from repro.perf.cost_model import CostModel

__all__ = ["Figure7Point", "Figure7Result", "run_figure7", "summarize_figure7"]


@dataclass(frozen=True)
class Figure7Point:
    """One classifier's cost/accuracy point."""

    name: str
    kind: str
    measured_multiply_adds: int
    paper_scale_multiply_adds: int
    event_f1: float
    precision: float
    recall: float


@dataclass
class Figure7Result:
    """All points for one dataset/task."""

    dataset: str
    microclassifiers: list[Figure7Point]
    discrete_classifiers: list[Figure7Point]
    trained: dict[str, TrainedClassifier]


def _mc_point(
    trained: TrainedClassifier, architecture: str, cost_model: CostModel
) -> Figure7Point:
    return Figure7Point(
        name=trained.name,
        kind=trained.kind,
        measured_multiply_adds=trained.marginal_multiply_adds,
        paper_scale_multiply_adds=cost_model.mc_cost(architecture),
        event_f1=trained.breakdown.f1,
        precision=trained.breakdown.precision,
        recall=trained.breakdown.recall,
    )


def _dc_point(
    trained: TrainedClassifier, config: DiscreteClassifierConfig, cost_model: CostModel
) -> Figure7Point:
    return Figure7Point(
        name=trained.name,
        kind=trained.kind,
        measured_multiply_adds=trained.marginal_multiply_adds,
        paper_scale_multiply_adds=cost_model.dc_cost(config),
        event_f1=trained.breakdown.f1,
        precision=trained.breakdown.precision,
        recall=trained.breakdown.recall,
    )


def run_figure7(
    context: ExperimentContext,
    architectures: tuple[str, ...] = ("full_frame", "localized"),
    dc_configs: list[DiscreteClassifierConfig] | None = None,
    dc_use_crop: bool | None = None,
) -> Figure7Result:
    """Train the MCs and the DC sweep on one dataset and collect their points.

    The paper uses spatial crops for the applicable MCs and for the Roadway
    dataset's DC only; ``dc_use_crop`` defaults to that rule.
    """
    cost_model = CostModel(
        resolution=context.dataset.spec.paper_resolution,
        crop_fraction=1.0,
    )
    if dc_use_crop is None:
        dc_use_crop = context.dataset.spec.name == "roadway"
    if dc_configs is None:
        # Train a cheap / medium / expensive subset of the Pareto sweep.
        sweep = discrete_classifier_pareto_configs()
        dc_configs = [sweep[0], sweep[2], sweep[4]]

    trained: dict[str, TrainedClassifier] = {}
    mc_points: list[Figure7Point] = []
    for architecture in architectures:
        result = context.train_microclassifier(architecture)
        trained[result.name] = result
        mc_points.append(_mc_point(result, architecture, cost_model))

    dc_points: list[Figure7Point] = []
    for config in dc_configs:
        result = context.train_discrete_classifier(config, use_crop=dc_use_crop)
        trained[result.name] = result
        dc_points.append(_dc_point(result, config, cost_model))

    return Figure7Result(
        dataset=context.dataset.spec.name,
        microclassifiers=mc_points,
        discrete_classifiers=dc_points,
        trained=trained,
    )


def summarize_figure7(result: Figure7Result) -> dict[str, float]:
    """Headline numbers from Section 4.5.

    * ``accuracy_ratio`` — best MC event F1 over best DC event F1
      (paper: up to 1.3x on Jackson, 1.1x on Roadway);
    * ``marginal_cost_ratio_vs_best_dc`` — paper-scale multiply-adds of the
      most accurate DC over the best MC's;
    * ``marginal_cost_ratio_vs_representative_dc`` — multiply-adds of the
      most expensive trained DC (the paper's "representative example from the
      Pareto frontier") over the best MC's (paper: 23x on Jackson, 11x on
      Roadway).
    """
    if not result.microclassifiers or not result.discrete_classifiers:
        return {"accuracy_ratio": float("nan"), "marginal_cost_ratio_vs_best_dc": float("nan")}
    best_mc = max(result.microclassifiers, key=lambda p: p.event_f1)
    best_dc = max(result.discrete_classifiers, key=lambda p: p.event_f1)
    representative_dc = max(result.discrete_classifiers, key=lambda p: p.paper_scale_multiply_adds)
    accuracy_ratio = best_mc.event_f1 / best_dc.event_f1 if best_dc.event_f1 > 0 else float("inf")
    mc_cost = max(best_mc.paper_scale_multiply_adds, 1)
    return {
        "accuracy_ratio": float(accuracy_ratio),
        "marginal_cost_ratio_vs_best_dc": float(best_dc.paper_scale_multiply_adds / mc_cost),
        "marginal_cost_ratio_vs_representative_dc": float(
            representative_dc.paper_scale_multiply_adds / mc_cost
        ),
        "best_mc_f1": float(best_mc.event_f1),
        "best_dc_f1": float(best_dc.event_f1),
    }
