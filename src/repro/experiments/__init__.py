"""Experiment harnesses: one module per paper table/figure.

Each module exposes a ``run_*`` function that produces the rows or series the
paper reports, plus a ``summarize`` helper that extracts the headline numbers
(bandwidth reduction factors, break-even classifier counts, cost/accuracy
ratios).  ``repro.experiments.runner`` executes everything and renders a
combined report, which is how ``EXPERIMENTS.md`` is generated.
"""

from repro.experiments.common import ExperimentContext, TrainedClassifier
from repro.experiments.figure4 import Figure4Point, run_figure4, summarize_figure4
from repro.experiments.figure5 import run_figure5, summarize_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import Figure7Point, run_figure7, summarize_figure7
from repro.experiments.table3 import run_table3

__all__ = [
    "ExperimentContext",
    "Figure4Point",
    "Figure7Point",
    "TrainedClassifier",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_table3",
    "summarize_figure4",
    "summarize_figure5",
    "summarize_figure7",
]
