"""Figure 6: per-frame execution-time breakdown (base DNN vs. microclassifiers).

For each of the three microclassifier architectures, the paper plots how the
per-frame processing time splits between the (constant) base-DNN pass and the
microclassifiers as their count grows from 1 to 50.  The reproduction
evaluates the calibrated throughput model's breakdown at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.throughput_model import ExecutionBreakdown, ThroughputModel

__all__ = ["Figure6Result", "run_figure6", "PAPER_BREAKDOWN_COUNTS"]

PAPER_BREAKDOWN_COUNTS = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20, 25, 30, 35, 40, 45, 50]

_ARCHITECTURES = ("full_frame", "localized", "windowed")


@dataclass
class Figure6Result:
    """Execution breakdowns per architecture, keyed by classifier count."""

    breakdowns: dict[str, dict[int, ExecutionBreakdown]]

    def base_dnn_seconds(self, architecture: str) -> float:
        """The (count-independent) base-DNN time for one architecture."""
        per_count = self.breakdowns[architecture]
        first = next(iter(per_count.values()))
        return first.base_dnn_seconds

    def classifier_seconds(self, architecture: str, num_classifiers: int) -> float:
        """Time spent in microclassifiers at a given concurrency."""
        return self.breakdowns[architecture][num_classifiers].classifiers_seconds

    def equivalent_mcs_to_base_dnn(self, architecture: str) -> float:
        """How many MCs cost as much CPU time as the base DNN (paper: 15-40)."""
        per_count = self.breakdowns[architecture]
        one = per_count[min(per_count)]
        per_mc = one.classifiers_seconds / one.num_classifiers
        return one.base_dnn_seconds / per_mc if per_mc > 0 else float("inf")


def run_figure6(
    model: ThroughputModel | None = None,
    classifier_counts: list[int] | None = None,
    architectures: tuple[str, ...] = _ARCHITECTURES,
) -> Figure6Result:
    """Compute the execution breakdown sweep for every architecture."""
    model = model or ThroughputModel()
    counts = classifier_counts or PAPER_BREAKDOWN_COUNTS
    breakdowns = {
        arch: {int(n): model.filterforward_breakdown(int(n), arch) for n in counts}
        for arch in architectures
    }
    return Figure6Result(breakdowns=breakdowns)
