"""Figure 4: bandwidth use versus event F1 (FilterForward vs. compress everything).

The paper's Figure 4 plots, for the Roadway dataset's *People with red* task
and two microclassifier architectures, the average uplink bandwidth against
the event F1 score of two offload strategies:

* **FilterForward** — filter on the edge using the original stream, re-encode
  only matched frames at a task-chosen bitrate, and upload those;
* **Compress everything** — H.264-compress the entire stream to a low bitrate,
  upload it all, and run the same filter in the cloud on the degraded video.

Our executable datasets run at a reduced spatial scale, so bitrates are swept
over the same *bits-per-pixel* range as the paper and reported both at the
scaled resolution and as paper-equivalent Mb/s (scaled by the area ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import ExperimentContext, TrainedClassifier
from repro.metrics.bandwidth import bits_to_mbps
from repro.video.codec import H264Simulator
from repro.video.stream import InMemoryVideoStream

__all__ = ["Figure4Point", "Figure4Result", "run_figure4", "summarize_figure4"]


@dataclass(frozen=True)
class Figure4Point:
    """One (bandwidth, accuracy) point for one offload strategy."""

    strategy: str
    architecture: str
    target_bitrate: float
    average_bandwidth: float
    paper_equivalent_mbps: float
    event_f1: float
    precision: float
    recall: float


@dataclass
class Figure4Result:
    """All points for one microclassifier architecture."""

    architecture: str
    filterforward: list[Figure4Point]
    compress_everything: list[Figure4Point]
    trained: TrainedClassifier


def _paper_equivalent_mbps(bits_per_second: float, context: ExperimentContext) -> float:
    """Scale a bandwidth at the generated resolution up to the paper's resolution."""
    spec = context.dataset.spec
    scaled_area = spec.resolution[0] * spec.resolution[1]
    paper_area = spec.paper_resolution[0] * spec.paper_resolution[1]
    return bits_to_mbps(bits_per_second * paper_area / scaled_area)


def default_bitrate_sweep(context: ExperimentContext, num_points: int = 6) -> list[float]:
    """Bitrates (at the generated resolution) spanning the paper's bpp range.

    The paper's compress-everything curve spans roughly 0.004-0.4 bits per
    pixel (0.1-10 Mb/s at 2048x850, 15 fps).
    """
    spec = context.dataset.spec
    pixels_per_second = spec.resolution[0] * spec.resolution[1] * spec.frame_rate
    bpp_values = np.geomspace(0.004, 0.4, num_points)
    return [float(bpp * pixels_per_second) for bpp in bpp_values]


def filterforward_upload_bitrate(context: ExperimentContext, paper_bitrate: float = 500_000.0) -> float:
    """Translate a paper-scale upload bitrate (e.g. 500 kb/s) to the generated resolution."""
    spec = context.dataset.spec
    scaled_area = spec.resolution[0] * spec.resolution[1]
    paper_area = spec.paper_resolution[0] * spec.paper_resolution[1]
    return float(paper_bitrate * scaled_area / paper_area)


def run_figure4(
    context: ExperimentContext,
    architecture: str = "localized",
    compress_bitrates: list[float] | None = None,
    ff_upload_bitrate: float | None = None,
    trained: TrainedClassifier | None = None,
    codec: H264Simulator | None = None,
) -> Figure4Result:
    """Produce the Figure 4 series for one microclassifier architecture."""
    codec = codec or H264Simulator()
    compress_bitrates = compress_bitrates or default_bitrate_sweep(context)
    ff_upload_bitrate = (
        ff_upload_bitrate
        if ff_upload_bitrate is not None
        else filterforward_upload_bitrate(context)
    )
    trained = trained or context.train_microclassifier(architecture)
    test_stream = context.dataset.test_stream

    # FilterForward: accuracy comes from filtering the original stream;
    # bandwidth comes from re-encoding only the matched frames.
    matched = np.flatnonzero(trained.smoothed)
    if matched.size:
        matched_frames = [test_stream.frame(int(i)) for i in matched]
        encoded = codec.encode(
            matched_frames,
            ff_upload_bitrate,
            test_stream.frame_rate,
            test_stream.resolution,
            stream_duration=test_stream.duration,
        )
        ff_bandwidth = encoded.average_bandwidth
    else:
        ff_bandwidth = 0.0
    ff_point = Figure4Point(
        strategy="filterforward",
        architecture=architecture,
        target_bitrate=ff_upload_bitrate,
        average_bandwidth=ff_bandwidth,
        paper_equivalent_mbps=_paper_equivalent_mbps(ff_bandwidth, context),
        event_f1=trained.breakdown.f1,
        precision=trained.breakdown.precision,
        recall=trained.breakdown.recall,
    )

    # Compress everything: degrade the whole stream at each bitrate, run the
    # *same trained MC* on the degraded video, and pay the full-stream bitrate.
    mc = trained.classifier
    layer = mc.config.input_layer
    crop = mc.config.crop
    compress_points: list[Figure4Point] = []
    for bitrate in compress_bitrates:
        degraded_frames, encoded = codec.transcode_stream(test_stream, bitrate)
        degraded_stream = InMemoryVideoStream(degraded_frames, test_stream.frame_rate)
        maps = []
        for frame in degraded_stream:
            activations = context.extractor.extract_pixels(frame.pixels)
            feature_map = activations[layer]
            if crop is not None:
                y0, y1, x0, x1 = crop.to_feature_coords(
                    (frame.height, frame.width), feature_map.shape[:2]
                )
                feature_map = feature_map[y0:y1, x0:x1, :]
            maps.append(feature_map)
        feature_maps = np.stack(maps, axis=0)
        if hasattr(mc, "predict_proba_stream"):
            probabilities = mc.predict_proba_stream(feature_maps)
        else:
            probabilities = ExperimentContext._batched_proba(mc.predict_proba_batch, feature_maps)
        breakdown = context.evaluate_predictions(probabilities, threshold=mc.config.threshold)
        compress_points.append(
            Figure4Point(
                strategy="compress_everything",
                architecture=architecture,
                target_bitrate=float(bitrate),
                average_bandwidth=encoded.average_bandwidth,
                paper_equivalent_mbps=_paper_equivalent_mbps(encoded.average_bandwidth, context),
                event_f1=breakdown.f1,
                precision=breakdown.precision,
                recall=breakdown.recall,
            )
        )

    return Figure4Result(
        architecture=architecture,
        filterforward=[ff_point],
        compress_everything=compress_points,
        trained=trained,
    )


def summarize_figure4(result: Figure4Result) -> dict[str, float]:
    """Headline numbers the paper quotes in Section 4.3.

    * ``bandwidth_reduction`` — bandwidth of the cheapest compress-everything
      point that (approximately) matches FilterForward's accuracy, divided by
      FilterForward's bandwidth (paper: 6.3x / 13x).
    * ``f1_improvement`` — FilterForward's event F1 divided by the F1 of the
      compress-everything point using a comparable amount of bandwidth
      (paper: 1.5x / 1.9x).
    """
    ff = result.filterforward[0]
    points = sorted(result.compress_everything, key=lambda p: p.average_bandwidth)
    if not points or ff.average_bandwidth <= 0:
        # No compression curve to compare against, or FilterForward matched
        # nothing at all (so its bandwidth use is zero — an infinite saving).
        reduction = float("inf") if points else float("nan")
        return {
            "bandwidth_reduction": reduction,
            "f1_improvement": float("nan"),
            "filterforward_f1": float(ff.event_f1),
            "filterforward_mbps_paper_equivalent": float(ff.paper_equivalent_mbps),
        }

    comparable_accuracy = [p for p in points if p.event_f1 >= 0.95 * ff.event_f1]
    reference = comparable_accuracy[0] if comparable_accuracy else points[-1]
    bandwidth_reduction = reference.average_bandwidth / ff.average_bandwidth

    at_similar_bandwidth = min(
        points, key=lambda p: abs(np.log(max(p.average_bandwidth, 1e-9) / max(ff.average_bandwidth, 1e-9)))
    )
    f1_improvement = (
        ff.event_f1 / at_similar_bandwidth.event_f1 if at_similar_bandwidth.event_f1 > 0 else float("inf")
    )
    return {
        "bandwidth_reduction": float(bandwidth_reduction),
        "f1_improvement": float(f1_improvement),
        "filterforward_f1": float(ff.event_f1),
        "filterforward_mbps_paper_equivalent": float(ff.paper_equivalent_mbps),
    }
