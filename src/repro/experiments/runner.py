"""Run every reproduction experiment and render a combined report.

``python -m repro.experiments.runner`` regenerates the measurements recorded
in EXPERIMENTS.md.  The ``quick`` preset keeps the executable datasets small
enough to finish in a few minutes on a laptop-class CPU; ``full`` uses larger
synthetic datasets for tighter statistics.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.experiments.common import ExperimentContext
from repro.experiments.figure4 import run_figure4, summarize_figure4
from repro.experiments.figure5 import run_figure5, summarize_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7, summarize_figure7
from repro.experiments.table3 import run_table3
from repro.video.datasets import make_jackson_like, make_roadway_like

__all__ = ["ReproductionReport", "run_all", "render_report"]

# Dataset sizes per preset: frames per split and (width, height) per dataset.
_PRESETS = {
    "quick": {"num_frames": 480, "jackson_size": (160, 90), "roadway_size": (160, 68)},
    "full": {"num_frames": 600, "jackson_size": (240, 136), "roadway_size": (256, 108)},
}


@dataclass
class ReproductionReport:
    """All experiment outputs plus their headline summaries."""

    preset: str
    table3: list[dict[str, Any]] = field(default_factory=list)
    figure4: dict[str, dict[str, float]] = field(default_factory=dict)
    figure5: dict[str, float] = field(default_factory=dict)
    figure6: dict[str, float] = field(default_factory=dict)
    figure7: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize the report for archival."""
        return json.dumps(asdict(self), indent=2, default=float)


def _make_contexts(preset: str, seed: int) -> tuple[ExperimentContext, ExperimentContext]:
    cfg = _PRESETS[preset]
    jw, jh = cfg["jackson_size"]
    rw, rh = cfg["roadway_size"]
    jackson = make_jackson_like(num_frames=cfg["num_frames"], width=jw, height=jh, seed=7 + seed)
    roadway = make_roadway_like(num_frames=cfg["num_frames"], width=rw, height=rh, seed=23 + seed)
    return (
        ExperimentContext(jackson, alpha=0.25, seed=seed),
        ExperimentContext(roadway, alpha=0.25, seed=seed),
    )


def run_all(preset: str = "quick", seed: int = 0, verbose: bool = True) -> ReproductionReport:
    """Run Table 3 and Figures 4-7 and summarize the headline numbers."""
    if preset not in _PRESETS:
        raise ValueError(f"Unknown preset {preset!r}; expected one of {sorted(_PRESETS)}")
    report = ReproductionReport(preset=preset)

    def log(message: str) -> None:
        if verbose:
            print(message, flush=True)

    log("[table3] generating datasets ...")
    jackson_ctx, roadway_ctx = _make_contexts(preset, seed)
    report.table3 = [asdict(row) for row in run_table3(jackson_ctx.dataset, roadway_ctx.dataset)]

    log("[figure5] throughput model sweep ...")
    figure5 = run_figure5()
    report.figure5 = summarize_figure5(figure5)

    log("[figure6] execution breakdown ...")
    figure6 = run_figure6()
    report.figure6 = {
        f"equivalent_mcs_{arch}": figure6.equivalent_mcs_to_base_dnn(arch)
        for arch in figure6.breakdowns
    }

    log("[figure7] cost vs accuracy on both tasks ...")
    figure7_results = {}
    for name, ctx in (("jackson", jackson_ctx), ("roadway", roadway_ctx)):
        result = run_figure7(ctx)
        figure7_results[name] = result
        report.figure7[name] = summarize_figure7(result)

    log("[figure4] bandwidth vs accuracy on the Roadway task ...")
    roadway_trained = figure7_results["roadway"].trained
    for architecture in ("full_frame", "localized"):
        trained = roadway_trained.get(f"roadway_{architecture}")
        result = run_figure4(roadway_ctx, architecture=architecture, trained=trained)
        report.figure4[architecture] = summarize_figure4(result)

    return report


def render_report(report: ReproductionReport) -> str:
    """Human-readable summary of a reproduction run."""
    lines = [f"FilterForward reproduction report (preset={report.preset})", ""]
    lines.append("Table 3 — dataset details (paper vs generated):")
    for row in report.table3:
        lines.append(
            f"  {row['name']:<8s} frames {row['paper_frames']:>7d} -> {row['generated_frames']:>5d}  "
            f"event fraction {row['paper_event_fraction']:.3f} -> {row['generated_event_fraction']:.3f}  "
            f"events {row['paper_unique_events']:>4d} -> {row['generated_unique_events']:>3d}"
        )
    lines.append("")
    lines.append("Figure 5 — throughput scalability (analytic, paper scale):")
    for key, value in report.figure5.items():
        lines.append(f"  {key}: {value:.2f}")
    lines.append("")
    lines.append("Figure 6 — MCs equivalent to one base-DNN pass:")
    for key, value in report.figure6.items():
        lines.append(f"  {key}: {value:.1f}")
    lines.append("")
    lines.append("Figure 4 — bandwidth vs accuracy (Roadway, people-with-red):")
    for arch, summary in report.figure4.items():
        lines.append(
            f"  {arch:<12s} bandwidth reduction {summary['bandwidth_reduction']:.1f}x, "
            f"F1 improvement {summary['f1_improvement']:.2f}x "
            f"(FF F1 {summary['filterforward_f1']:.2f})"
        )
    lines.append("")
    lines.append("Figure 7 — marginal cost vs accuracy:")
    for name, summary in report.figure7.items():
        lines.append(
            f"  {name:<8s} accuracy ratio {summary['accuracy_ratio']:.2f}x, "
            f"marginal cost ratio vs representative DC "
            f"{summary['marginal_cost_ratio_vs_representative_dc']:.1f}x"
        )
    return "\n".join(lines)


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Run the FilterForward reproduction experiments")
    parser.add_argument("--preset", choices=sorted(_PRESETS), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    args = parser.parse_args()
    report = run_all(preset=args.preset, seed=args.seed)
    print(report.to_json() if args.json else render_report(report))


if __name__ == "__main__":
    main()
