"""The FilterForward feature extractor.

The feature extractor evaluates the base DNN once per frame and serves its
intermediate activations ("feature maps") to every installed microclassifier
(paper Section 3.1).  Microclassifiers may pull from any named layer and may
optionally crop a rectangular region of the feature map — cropping features
instead of raw pixels is what lets many MCs with different regions of
interest share one base-DNN pass (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.nn.model import Sequential
from repro.video.frame import Frame

__all__ = ["FeatureMapCrop", "FeatureExtractor"]


@dataclass(frozen=True)
class FeatureMapCrop:
    """A rectangular crop expressed in *pixel* coordinates.

    The crop is specified against the original frame (``(x0, y0, x1, y1)``,
    end-exclusive) and rescaled to each feature map's spatial grid when
    applied, exactly as the paper does ("the coordinates are rescaled based
    on the dimensions of the feature maps", Section 4.1).
    """

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"Empty crop rectangle: {(self.x0, self.y0, self.x1, self.y1)}")
        if self.x0 < 0 or self.y0 < 0:
            raise ValueError("Crop coordinates must be non-negative")

    def to_feature_coords(
        self, frame_size: tuple[int, int], feature_size: tuple[int, int]
    ) -> tuple[int, int, int, int]:
        """Rescale the pixel crop to feature-map coordinates.

        Parameters
        ----------
        frame_size:
            ``(height, width)`` of the original frame in pixels.
        feature_size:
            ``(height, width)`` of the feature map.

        Returns
        -------
        (y0, y1, x0, x1) in feature-map cells, guaranteed non-empty.
        """
        frame_h, frame_w = frame_size
        feat_h, feat_w = feature_size
        y0 = int(np.floor(self.y0 / frame_h * feat_h))
        y1 = int(np.ceil(self.y1 / frame_h * feat_h))
        x0 = int(np.floor(self.x0 / frame_w * feat_w))
        x1 = int(np.ceil(self.x1 / frame_w * feat_w))
        y0, x0 = max(0, y0), max(0, x0)
        y1, x1 = min(feat_h, max(y1, y0 + 1)), min(feat_w, max(x1, x0 + 1))
        return (y0, y1, x0, x1)


class FeatureExtractor:
    """Runs the base DNN once per frame and serves per-layer feature maps.

    Parameters
    ----------
    base_dnn:
        A built :class:`~repro.nn.model.Sequential` (typically from
        :func:`repro.features.base_dnn.build_mobilenet_like`).
    tap_layers:
        The layer names whose activations should be captured.  Only layers a
        microclassifier actually consumes need to be tapped.
    cache_size:
        Number of most-recent frames whose feature maps are kept in memory.
        The windowed microclassifier needs a window of consecutive frames.
    """

    def __init__(
        self,
        base_dnn: Sequential,
        tap_layers: Sequence[str],
        cache_size: int = 16,
    ) -> None:
        if not tap_layers:
            raise ValueError("FeatureExtractor requires at least one tap layer")
        unknown = set(tap_layers) - set(base_dnn.layer_names())
        if unknown:
            raise KeyError(f"Tap layer(s) not in base DNN: {sorted(unknown)}")
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        self.base_dnn = base_dnn
        self.tap_layers = list(dict.fromkeys(tap_layers))
        self.cache_size = int(cache_size)
        self._cache: dict[int, dict[str, np.ndarray]] = {}
        self._cache_order: list[int] = []
        self.frames_processed = 0

    # -- execution ---------------------------------------------------------
    def extract_pixels(self, pixels: np.ndarray) -> dict[str, np.ndarray]:
        """Run the base DNN on one frame's pixels and return tapped activations.

        ``pixels`` is ``(H, W, 3)`` and must match the spatial size the base
        DNN was built for; returned activations are per-sample (leading batch
        dimension removed).
        """
        expected = self.base_dnn.input_shape
        pixels = np.asarray(pixels, dtype=np.float64)
        if expected is not None and tuple(pixels.shape) != tuple(expected):
            raise ValueError(
                f"Frame pixels have shape {pixels.shape}, but the base DNN was built "
                f"for {tuple(expected)}"
            )
        batch = pixels[None, ...]
        _, activations = self.base_dnn.forward_with_taps(batch, self.tap_layers)
        self.frames_processed += 1
        return {name: act[0] for name, act in activations.items()}

    def extract(self, frame: Frame) -> dict[str, np.ndarray]:
        """Feature maps for ``frame``, using the per-frame cache."""
        cached = self._cache.get(frame.index)
        if cached is not None:
            return cached
        activations = self.extract_pixels(frame.pixels)
        self._insert(frame.index, activations)
        return activations

    def prime(self, frame_index: int, activations: dict[str, np.ndarray]) -> None:
        """Install precomputed activations for ``frame_index`` into the cache.

        This is the fan-out half of cross-camera batched inference
        (:class:`repro.core.batched.BatchedScorer`): the base DNN ran once
        over a stacked batch, and each camera's slice of the tapped
        activations is handed to its extractor here — usually as a *view*
        into the batch tensor, so no copy happens between the shared forward
        pass and the microclassifier that consumes it.  A subsequent
        :meth:`extract` for the same frame is a cache hit and never re-runs
        the base DNN.  Priming a frame that is already cached is a no-op.

        ``activations`` must cover every tapped layer; the priming side is
        responsible for having computed them with the bit-exact batched
        forward (:func:`repro.nn.batched.batched_forward_with_taps`).
        """
        if frame_index in self._cache:
            return
        missing = set(self.tap_layers) - set(activations)
        if missing:
            raise KeyError(f"Primed activations missing tapped layer(s) {sorted(missing)}")
        self.frames_processed += 1
        self._insert(frame_index, dict(activations))

    def _insert(self, frame_index: int, activations: dict[str, np.ndarray]) -> None:
        self._cache[frame_index] = activations
        self._cache_order.append(frame_index)
        while len(self._cache_order) > self.cache_size:
            evicted = self._cache_order.pop(0)
            self._cache.pop(evicted, None)

    def feature_map(
        self,
        frame: Frame,
        layer: str,
        crop: FeatureMapCrop | None = None,
    ) -> np.ndarray:
        """The (optionally cropped) feature map of ``layer`` for ``frame``."""
        if layer not in self.tap_layers:
            raise KeyError(
                f"Layer {layer!r} is not tapped by this extractor (taps: {self.tap_layers})"
            )
        activation = self.extract(frame)[layer]
        if crop is None:
            return activation
        y0, y1, x0, x1 = crop.to_feature_coords(
            (frame.height, frame.width), activation.shape[:2]
        )
        return activation[y0:y1, x0:x1, :]

    # -- introspection -----------------------------------------------------
    def layer_shape(self, layer: str) -> tuple[int, int, int]:
        """Per-sample output shape of a tapped layer."""
        shapes = self.base_dnn.layer_output_shapes()
        if layer not in shapes:
            raise KeyError(f"Unknown layer {layer!r}")
        return shapes[layer]

    def cropped_layer_shape(
        self, layer: str, crop: FeatureMapCrop | None, frame_size: tuple[int, int]
    ) -> tuple[int, int, int]:
        """Shape of ``layer``'s feature map after applying ``crop``."""
        shape = self.layer_shape(layer)
        if crop is None:
            return shape
        y0, y1, x0, x1 = crop.to_feature_coords(frame_size, shape[:2])
        return (y1 - y0, x1 - x0, shape[2])

    def multiply_adds_per_frame(self) -> int:
        """Analytic multiply-adds of one base-DNN pass at the built input size."""
        return self.base_dnn.multiply_adds()

    def reset_cache(self) -> None:
        """Drop all cached feature maps."""
        self._cache.clear()
        self._cache_order.clear()
