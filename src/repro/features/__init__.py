"""Feature extraction: the shared base DNN and the FilterForward feature extractor.

The base DNN (a MobileNet-style depthwise-separable CNN) runs once per frame
on the edge node; every microclassifier consumes its intermediate activations
("feature maps").  This computation sharing is FilterForward's key
contribution (paper Section 3.1).
"""

from repro.features.base_dnn import (
    FULL_SCALE_ALPHA,
    MOBILENET_BLOCKS,
    build_mobilenet_like,
    mobilenet_layer_shapes,
    mobilenet_multiply_adds,
)
from repro.features.extractor import FeatureExtractor, FeatureMapCrop

__all__ = [
    "FULL_SCALE_ALPHA",
    "FeatureExtractor",
    "FeatureMapCrop",
    "MOBILENET_BLOCKS",
    "build_mobilenet_like",
    "mobilenet_layer_shapes",
    "mobilenet_multiply_adds",
]
