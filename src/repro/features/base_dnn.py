"""The MobileNet-style base DNN.

The paper uses 32-bit MobileNet (Howard et al., 2017) trained on ImageNet as
the shared feature extractor, tapping activations from two layers:

* ``conv4_2/sep`` — a middle layer at 1/16 spatial scale with 512 channels
  (input to the localized and windowed-localized microclassifiers), and
* ``conv5_6/sep`` — the penultimate convolutional layer at 1/32 spatial scale
  with 1024 channels (input to the full-frame object detector).

This module builds the same architecture in the :mod:`repro.nn` framework.
Two knobs keep the executable experiments tractable while preserving the
paper-scale cost analysis:

* ``alpha`` (width multiplier) scales every channel count; the executable
  pipeline defaults to a thin network, while the analytic cost model uses
  ``alpha=1.0`` (:data:`FULL_SCALE_ALPHA`).
* Batch-norm layers are folded away (inference-time folding is standard),
  so each block is depthwise conv -> ReLU -> pointwise conv -> ReLU.

Layer naming follows the Caffe MobileNet the paper cites, so
``model.layer("conv4_2/sep")`` taps the post-activation output of that block.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAveragePool,
    ReLU,
    Softmax,
)
from repro.nn.model import Sequential

__all__ = [
    "MOBILENET_BLOCKS",
    "FULL_SCALE_ALPHA",
    "build_mobilenet_like",
    "mobilenet_layer_shapes",
    "mobilenet_multiply_adds",
]

# (block name, stride, output channels at alpha=1.0) for every separable block
# of MobileNet v1, after the initial full convolution.
MOBILENET_BLOCKS: list[tuple[str, int, int]] = [
    ("conv2_1", 1, 64),
    ("conv2_2", 2, 128),
    ("conv3_1", 1, 128),
    ("conv3_2", 2, 256),
    ("conv4_1", 1, 256),
    ("conv4_2", 2, 512),
    ("conv5_1", 1, 512),
    ("conv5_2", 1, 512),
    ("conv5_3", 1, 512),
    ("conv5_4", 1, 512),
    ("conv5_5", 1, 512),
    ("conv5_6", 2, 1024),
    ("conv6", 1, 1024),
]

# The paper's two tap points.
TAP_MIDDLE = "conv4_2/sep"
TAP_PENULTIMATE = "conv5_6/sep"

FULL_SCALE_ALPHA = 1.0
_FIRST_CONV_CHANNELS = 32


def _scaled(channels: int, alpha: float) -> int:
    """Apply the width multiplier, keeping at least 4 channels."""
    return max(4, int(round(channels * alpha)))


def build_mobilenet_like(
    input_shape: tuple[int, int, int],
    alpha: float = 0.25,
    num_classes: int = 0,
    include_head: bool = False,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Build a MobileNet-style base DNN.

    Parameters
    ----------
    input_shape:
        Per-frame input shape ``(height, width, 3)``.  FilterForward feeds
        full-resolution frames here (not 224x224 crops).
    alpha:
        Width multiplier applied to every channel count.
    num_classes, include_head:
        If ``include_head`` is true, append the global-average-pool +
        fully-connected + softmax ImageNet head with ``num_classes`` outputs.
        The FilterForward feature extractor never needs the head.
    rng:
        Weight-initialization generator (seeded 0 by default).

    Returns
    -------
    Sequential
        Built model whose separable blocks expose post-activation taps named
        ``<block>/sep`` (e.g. ``conv4_2/sep``).
    """
    if len(input_shape) != 3 or input_shape[2] != 3:
        raise ValueError(f"input_shape must be (H, W, 3); got {input_shape}")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = rng or np.random.default_rng(0)
    layers = [
        Conv2D(_scaled(_FIRST_CONV_CHANNELS, alpha), 3, stride=2, name="conv1"),
        ReLU(name="conv1/relu"),
    ]
    for block_name, stride, channels in MOBILENET_BLOCKS:
        out_channels = _scaled(channels, alpha)
        layers.extend(
            [
                DepthwiseConv2D(3, stride=stride, name=f"{block_name}/dw"),
                ReLU(name=f"{block_name}/dw/relu"),
                Conv2D(out_channels, 1, stride=1, name=f"{block_name}/sep/pw"),
                ReLU(name=f"{block_name}/sep"),
            ]
        )
    if include_head:
        if num_classes <= 0:
            raise ValueError("num_classes must be positive when include_head=True")
        layers.extend(
            [
                GlobalAveragePool(name="pool6"),
                Dense(num_classes, name="fc7"),
                Softmax(name="prob"),
            ]
        )
    return Sequential(layers, input_shape=input_shape, rng=rng, name=f"mobilenet_alpha{alpha}")


def mobilenet_layer_shapes(
    input_resolution: tuple[int, int], alpha: float = FULL_SCALE_ALPHA
) -> dict[str, tuple[int, int, int]]:
    """Per-block output shapes ``(H, W, C)`` without building any weights.

    ``input_resolution`` is ``(width, height)`` in pixels (the paper's
    convention).  Useful for reasoning about paper-scale feature-map sizes
    (e.g. 1920x1080 -> ``conv4_2/sep`` of 68x120x512) and for the layer
    selection heuristic.
    """
    width, height = input_resolution
    h = -(-height // 2)
    w = -(-width // 2)
    shapes: dict[str, tuple[int, int, int]] = {"conv1": (h, w, _scaled(_FIRST_CONV_CHANNELS, alpha))}
    channels = _scaled(_FIRST_CONV_CHANNELS, alpha)
    for block_name, stride, block_channels in MOBILENET_BLOCKS:
        if stride == 2:
            h = -(-h // 2)
            w = -(-w // 2)
        channels = _scaled(block_channels, alpha)
        shapes[f"{block_name}/sep"] = (h, w, channels)
    return shapes


def mobilenet_multiply_adds(
    input_resolution: tuple[int, int], alpha: float = FULL_SCALE_ALPHA
) -> int:
    """Analytic multiply-adds of one base-DNN forward pass (no head).

    Uses the paper's per-layer formulas without instantiating weights, so it
    can be evaluated at full 1920x1080 scale cheaply.
    """
    width, height = input_resolution
    h = -(-height // 2)
    w = -(-width // 2)
    in_channels = 3
    out_channels = _scaled(_FIRST_CONV_CHANNELS, alpha)
    total = h * w * in_channels * 9 * out_channels  # conv1, 3x3 stride 2
    in_channels = out_channels
    for _, stride, block_channels in MOBILENET_BLOCKS:
        if stride == 2:
            h_out = -(-h // 2)
            w_out = -(-w // 2)
        else:
            h_out, w_out = h, w
        out_channels = _scaled(block_channels, alpha)
        total += h_out * w_out * in_channels * 9  # depthwise 3x3
        total += h_out * w_out * in_channels * out_channels  # pointwise 1x1
        h, w, in_channels = h_out, w_out, out_channels
    return int(total)
