"""NoScope-style discrete classifiers (DCs).

A discrete classifier is a small task-specific CNN that maps *raw pixels*
directly to a binary relevance decision.  It is cheaper than a full
general-purpose DNN but, unlike a microclassifier, it cannot share any
computation with other applications: every DC repeats the full
pixels-to-decision translation.

The paper constructs DCs "with between 100 million and 2.5 billion
multiply-adds, varying the number of convolutional layers (2-4), the number
of kernels (16-64), the stride length (1-3), the number of pooling layers
(0-2), and the type of convolutions (standard or separable)", with kernel
size fixed to 3 (Section 4.4).  :func:`discrete_classifier_pareto_configs`
reproduces that sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Parameter,
    ReLU,
    SeparableConv2D,
)
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.model import Sequential

__all__ = [
    "DiscreteClassifierConfig",
    "DiscreteClassifier",
    "discrete_classifier_pareto_configs",
]

_SIGMOID = SigmoidBinaryCrossEntropy._sigmoid


@dataclass(frozen=True)
class DiscreteClassifierConfig:
    """Architecture knobs of one discrete classifier.

    ``kernels`` gives the filter count of each convolutional layer (its
    length is the number of conv layers); ``strides`` must match in length.
    ``pooling_layers`` max-pool (2x2) layers are inserted after the earliest
    convolutions.  ``separable`` switches every convolution to a
    depthwise-separable one.
    """

    name: str = "dc"
    kernels: tuple[int, ...] = (32, 32)
    strides: tuple[int, ...] = (2, 2)
    pooling_layers: int = 1
    separable: bool = False
    kernel_size: int = 3
    fc_units: int = 32
    threshold: float = 0.5

    def __post_init__(self) -> None:
        if not 2 <= len(self.kernels) <= 4:
            raise ValueError("DCs use between 2 and 4 convolutional layers")
        if len(self.strides) != len(self.kernels):
            raise ValueError("strides must have the same length as kernels")
        if any(k < 16 or k > 64 for k in self.kernels):
            raise ValueError("kernel counts must be within [16, 64]")
        if any(s < 1 or s > 3 for s in self.strides):
            raise ValueError("strides must be within [1, 3]")
        if not 0 <= self.pooling_layers <= 2:
            raise ValueError("pooling_layers must be within [0, 2]")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")


class DiscreteClassifier:
    """A pixel-level binary classifier (the NoScope-style baseline)."""

    def __init__(self, config: DiscreteClassifierConfig) -> None:
        self.config = config
        self.model: Sequential | None = None
        self.input_shape: tuple[int, int, int] | None = None
        self.built = False

    @property
    def name(self) -> str:
        """Configured classifier name."""
        return self.config.name

    def build(self, input_shape: tuple[int, int, int], rng: np.random.Generator | None = None) -> None:
        """Build the CNN for raw-pixel inputs of ``input_shape`` (H, W, 3)."""
        rng = rng or np.random.default_rng(0)
        cfg = self.config
        conv_cls = SeparableConv2D if cfg.separable else Conv2D
        layers = []
        for i, (filters, stride) in enumerate(zip(cfg.kernels, cfg.strides)):
            layers.append(
                conv_cls(filters, cfg.kernel_size, stride=stride, name=f"{cfg.name}/conv{i}")
            )
            layers.append(ReLU(name=f"{cfg.name}/relu{i}"))
            if i < cfg.pooling_layers:
                layers.append(MaxPool2D(2, name=f"{cfg.name}/pool{i}"))
        layers.extend(
            [
                Flatten(name=f"{cfg.name}/flatten"),
                Dense(cfg.fc_units, name=f"{cfg.name}/fc1"),
                ReLU(name=f"{cfg.name}/fc_relu"),
                Dense(1, name=f"{cfg.name}/fc2"),
            ]
        )
        self.model = Sequential(layers, input_shape=input_shape, rng=rng, name=cfg.name)
        self.input_shape = tuple(input_shape)
        self.built = True

    def _require_built(self) -> None:
        if not self.built:
            raise RuntimeError(f"DiscreteClassifier {self.name!r} used before build()")

    # -- inference -----------------------------------------------------------
    def forward_logits(self, pixels: np.ndarray, training: bool) -> np.ndarray:
        """Raw logits ``(N, 1)`` for a batch of pixel frames ``(N, H, W, 3)``."""
        self._require_built()
        return self.model.forward(np.asarray(pixels, dtype=np.float64), training=training)

    def predict_proba_batch(self, pixels: np.ndarray) -> np.ndarray:
        """Relevance probabilities for a batch of frames."""
        return _SIGMOID(self.forward_logits(pixels, training=False)[:, 0])

    def predict_proba(self, pixels: np.ndarray) -> float:
        """Relevance probability for a single frame ``(H, W, 3)``."""
        return float(self.predict_proba_batch(np.asarray(pixels)[None, ...])[0])

    def classify(self, probability: float) -> bool:
        """Apply the decision threshold."""
        return bool(probability >= self.config.threshold)

    # -- training support ------------------------------------------------------
    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate a gradient with respect to the logits."""
        self._require_built()
        self.model.backward(grad_logits)

    def parameters(self) -> list[Parameter]:
        """All trainable parameters."""
        return self.model.parameters() if self.model is not None else []

    # -- cost accounting ---------------------------------------------------------
    def multiply_adds(self, input_shape: tuple[int, int, int] | None = None) -> int:
        """Multiply-adds for one frame — the DC's *total* cost (nothing is shared)."""
        self._require_built()
        return self.model.multiply_adds(input_shape)

    def num_parameters(self) -> int:
        """Total scalar weights."""
        return self.model.num_parameters() if self.model is not None else 0


def discrete_classifier_pareto_configs() -> list[DiscreteClassifierConfig]:
    """The DC sweep used to trace the cost/accuracy Pareto frontier (Figure 7).

    Configurations range from cheap (2 strided separable convolutions,
    ~90M multiply-adds at 1080p) to expensive (3 standard convolutions,
    ~2.3B multiply-adds at 1080p), spanning the paper's 100M-2.5B range.
    """
    return [
        DiscreteClassifierConfig(
            name="dc_small", kernels=(16, 32), strides=(2, 2), pooling_layers=1, separable=True
        ),
        DiscreteClassifierConfig(
            name="dc_medium", kernels=(16, 32), strides=(2, 2), pooling_layers=1, separable=False
        ),
        DiscreteClassifierConfig(
            name="dc_large", kernels=(32, 32), strides=(2, 2), pooling_layers=1, separable=False
        ),
        DiscreteClassifierConfig(
            name="dc_xlarge", kernels=(32, 48, 64), strides=(2, 2, 1), pooling_layers=1, separable=False
        ),
        DiscreteClassifierConfig(
            name="dc_xxlarge", kernels=(32, 64, 64), strides=(2, 2, 1), pooling_layers=1, separable=False
        ),
    ]
