"""The "multiple full DNNs" baseline.

The naive way to serve N applications on an edge node is to run N complete
MobileNet instances, one per application, each with its own binary head.
The paper shows this is never throughput-optimal and runs out of memory
beyond ~30 classifiers (Section 4.4).  This module provides both a runnable
(thin) full-DNN classifier and an analytic estimate of the cost and memory
of running N of them at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.base_dnn import build_mobilenet_like, mobilenet_multiply_adds
from repro.nn.layers import Dense, GlobalAveragePool, Parameter
from repro.nn.losses import SigmoidBinaryCrossEntropy
from repro.nn.model import Sequential

__all__ = ["FullDNNClassifier", "MultipleFullDNNEstimate", "estimate_multiple_full_dnns"]

_SIGMOID = SigmoidBinaryCrossEntropy._sigmoid

# Memory footprint of one full MobileNet instance on the paper's edge node
# ("more than 1 GB of memory", Section 2.2.3) and the node's RAM budget.
PAPER_MOBILENET_MEMORY_BYTES = 1.0 * 1024**3
PAPER_EDGE_NODE_MEMORY_BYTES = 32.0 * 1024**3


class FullDNNClassifier:
    """A complete MobileNet with a binary head, serving a single application."""

    def __init__(self, name: str = "full_dnn", alpha: float = 0.25, threshold: float = 0.5) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.name = name
        self.alpha = float(alpha)
        self.threshold = float(threshold)
        self.backbone: Sequential | None = None
        self.head: Sequential | None = None
        self.built = False

    def build(self, input_shape: tuple[int, int, int], rng: np.random.Generator | None = None) -> None:
        """Build the backbone and binary head for frames of ``input_shape``."""
        rng = rng or np.random.default_rng(0)
        self.backbone = build_mobilenet_like(input_shape, alpha=self.alpha, rng=rng)
        feat_shape = self.backbone.output_shape_
        self.head = Sequential(
            [
                GlobalAveragePool(name=f"{self.name}/pool"),
                Dense(1, name=f"{self.name}/fc"),
            ],
            input_shape=feat_shape,
            rng=rng,
            name=f"{self.name}/head",
        )
        self.built = True

    def _require_built(self) -> None:
        if not self.built:
            raise RuntimeError(f"FullDNNClassifier {self.name!r} used before build()")

    def forward_logits(self, pixels: np.ndarray, training: bool) -> np.ndarray:
        """Raw logits ``(N, 1)`` for a batch of frames."""
        self._require_built()
        features = self.backbone.forward(np.asarray(pixels, dtype=np.float64), training=training)
        return self.head.forward(features, training=training)

    def predict_proba_batch(self, pixels: np.ndarray) -> np.ndarray:
        """Relevance probabilities for a batch of frames."""
        return _SIGMOID(self.forward_logits(pixels, training=False)[:, 0])

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate through head and backbone."""
        self._require_built()
        self.backbone.backward(self.head.backward(grad_logits))

    def parameters(self) -> list[Parameter]:
        """All trainable parameters (backbone + head)."""
        if not self.built:
            return []
        return self.backbone.parameters() + self.head.parameters()

    def multiply_adds(self) -> int:
        """Per-frame multiply-adds of this (entire) DNN."""
        self._require_built()
        return self.backbone.multiply_adds() + self.head.multiply_adds()


@dataclass(frozen=True)
class MultipleFullDNNEstimate:
    """Analytic cost/memory of running ``num_classifiers`` full MobileNets."""

    num_classifiers: int
    multiply_adds_per_frame: int
    memory_bytes: float
    fits_in_memory: bool

    @property
    def memory_gb(self) -> float:
        """Memory footprint in GiB."""
        return self.memory_bytes / 1024**3


def estimate_multiple_full_dnns(
    num_classifiers: int,
    input_resolution: tuple[int, int] = (1920, 1080),
    alpha: float = 1.0,
    per_instance_memory_bytes: float = PAPER_MOBILENET_MEMORY_BYTES,
    node_memory_bytes: float = PAPER_EDGE_NODE_MEMORY_BYTES,
) -> MultipleFullDNNEstimate:
    """Estimate cost and memory of the multiple-MobileNets baseline.

    Each classifier pays a complete base-DNN pass per frame; memory grows
    linearly with the number of instances and exceeds the edge node's RAM
    beyond ~30 classifiers at the paper's settings.
    """
    if num_classifiers < 1:
        raise ValueError("num_classifiers must be positive")
    per_instance = mobilenet_multiply_adds(input_resolution, alpha=alpha)
    memory = num_classifiers * per_instance_memory_bytes
    return MultipleFullDNNEstimate(
        num_classifiers=int(num_classifiers),
        multiply_adds_per_frame=int(num_classifiers * per_instance),
        memory_bytes=float(memory),
        fits_in_memory=bool(memory <= node_memory_bytes),
    )
