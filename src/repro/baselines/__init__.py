"""Baselines the paper compares FilterForward against.

* :mod:`repro.baselines.discrete_classifier` — NoScope-style *discrete
  classifiers* (DCs): cheap task-specific CNNs that operate on raw pixels
  instead of shared feature maps (Sections 4.4, 4.5, 5.2.1).
* :mod:`repro.baselines.full_dnn` — naively running one full MobileNet per
  application (Section 4.4).
* :mod:`repro.baselines.compression` — the "compress everything" strategy:
  upload the entire stream at a low bitrate and filter in the cloud
  (Section 4.3, Figure 4).
"""

from repro.baselines.compression import CompressEverythingResult, run_compress_everything
from repro.baselines.discrete_classifier import (
    DiscreteClassifier,
    DiscreteClassifierConfig,
    discrete_classifier_pareto_configs,
)
from repro.baselines.full_dnn import FullDNNClassifier, MultipleFullDNNEstimate, estimate_multiple_full_dnns

__all__ = [
    "CompressEverythingResult",
    "DiscreteClassifier",
    "DiscreteClassifierConfig",
    "FullDNNClassifier",
    "MultipleFullDNNEstimate",
    "discrete_classifier_pareto_configs",
    "estimate_multiple_full_dnns",
    "run_compress_everything",
]
