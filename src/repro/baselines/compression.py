"""The "compress everything" strategy (Figure 4 baseline).

Instead of filtering on the edge, this strategy uploads the *entire* stream
compressed to a low bitrate and runs FilterForward in the cloud on the
degraded video.  Bandwidth use is then simply the encode bitrate, while
accuracy suffers because heavy compression destroys the fine details
(distant pedestrians, red garments) the classifiers depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import FilterForwardPipeline, PipelineResult
from repro.video.codec import EncodedSegment, H264Simulator
from repro.video.stream import InMemoryVideoStream, VideoStream

__all__ = ["CompressEverythingResult", "run_compress_everything"]


@dataclass
class CompressEverythingResult:
    """Outcome of uploading the whole stream at one bitrate and filtering in the cloud."""

    target_bitrate: float
    encoded: EncodedSegment
    cloud_result: PipelineResult

    @property
    def average_bandwidth(self) -> float:
        """Average uplink bandwidth (bits/s) consumed by the full-stream upload."""
        return self.encoded.average_bandwidth

    @property
    def detail_scale(self) -> float:
        """Fraction of spatial detail retained by the encode (1.0 = lossless)."""
        if not self.encoded.frames:
            return 1.0
        return self.encoded.frames[0].detail_scale


def run_compress_everything(
    stream: VideoStream,
    pipeline: FilterForwardPipeline,
    target_bitrate: float,
    codec: H264Simulator | None = None,
) -> CompressEverythingResult:
    """Upload ``stream`` at ``target_bitrate`` and run ``pipeline`` on the degraded copy.

    The same pipeline object (same trained microclassifiers) is reused, which
    mirrors the paper's methodology of "running FF on both the edge stream
    and the cloud stream" so bandwidth and accuracy can be compared directly.
    """
    codec = codec or H264Simulator()
    degraded_frames, encoded = codec.transcode_stream(stream, target_bitrate)
    degraded_stream = InMemoryVideoStream(
        [f.with_pixels(np.asarray(f.pixels, dtype=np.float32)) for f in degraded_frames],
        stream.frame_rate,
    )
    pipeline.extractor.reset_cache()
    cloud_result = pipeline.process_stream(degraded_stream, annotate_frames=False)
    pipeline.extractor.reset_cache()
    return CompressEverythingResult(
        target_bitrate=float(target_bitrate),
        encoded=encoded,
        cloud_result=cloud_result,
    )
