"""Idempotent datacenter ingest with event-key dedupe and consumer lag.

The datacenter end of the delivery plane.  Payloads arrive (possibly more
than once — the broker can deliver a record whose ack was lost, making the
sender retransmit) and are consumed by a serial consumer with a fixed
service rate.  Two guarantees:

* **idempotence** — the first arrival of each event key is ingested; every
  later arrival of the same key is suppressed as a duplicate, so retries
  are safe end to end;
* **lag modeling** — the consumer processes one record per
  ``1 / consumer_rate_eps`` seconds; an arrival while the consumer is busy
  queues, and its completion lags its arrival.  Delivery latency is
  measured to ingest *completion*, so a slow consumer shows up in the p99.

Arrivals must be fed in non-decreasing arrival order (the plane sorts the
uplink's completed transfers before feeding them).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IngestResult", "DatacenterIngest"]


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one arrival at the datacenter."""

    key: str
    accepted: bool
    arrived_at: float
    completed_at: float

    @property
    def consumer_lag(self) -> float:
        """How long the arrival waited on (and in) the consumer."""
        return self.completed_at - self.arrived_at


class DatacenterIngest:
    """Serial, deduplicating consumer of delivered event payloads."""

    def __init__(self, consumer_rate_eps: float = 0.0) -> None:
        """``consumer_rate_eps`` is events per second; 0 = infinitely fast."""
        if consumer_rate_eps < 0:
            raise ValueError("consumer_rate_eps must be non-negative")
        self.consumer_rate_eps = float(consumer_rate_eps)
        self.unique_ingests = 0
        self.duplicates = 0
        self.max_consumer_lag = 0.0
        self._seen: set[str] = set()
        self._busy_until = 0.0
        self._last_arrival = float("-inf")

    @property
    def service_seconds(self) -> float:
        """Consumer time per ingested record."""
        return 1.0 / self.consumer_rate_eps if self.consumer_rate_eps > 0 else 0.0

    def ingest(self, key: str, arrived_at: float) -> IngestResult:
        """Apply one arrival; duplicates are suppressed without consumer cost."""
        if arrived_at < self._last_arrival:
            raise ValueError("ingest arrivals must be in non-decreasing time order")
        self._last_arrival = arrived_at
        if key in self._seen:
            self.duplicates += 1
            return IngestResult(
                key=key, accepted=False, arrived_at=arrived_at, completed_at=arrived_at
            )
        self._seen.add(key)
        self.unique_ingests += 1
        completed = max(arrived_at, self._busy_until) + self.service_seconds
        self._busy_until = completed
        lag = completed - arrived_at
        if lag > self.max_consumer_lag:
            self.max_consumer_lag = lag
        return IngestResult(
            key=key, accepted=True, arrived_at=arrived_at, completed_at=completed
        )

    def has_ingested(self, key: str) -> bool:
        """Whether ``key`` has been accepted (dedupe membership probe)."""
        return key in self._seen
