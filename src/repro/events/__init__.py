"""End-to-end event delivery: the records an edge node actually ships.

The paper's product is filtered *events*, not frames — this package carries
a detected :class:`~repro.core.events.EventRecord` from the edge node that
closed it to the datacenter that consumes it, reliably and deterministically:

* :mod:`repro.events.broker` — a seeded, hash-deterministic QoS/loss model
  (delivered / lost / delivered-but-ack-lost per publish attempt);
* :mod:`repro.events.outbox` — per-node bounded publish queue with
  timeout-driven retries and capped exponential backoff;
* :mod:`repro.events.ingest` — idempotent datacenter ingest with global
  event-key dedupe and a serial consumer (lag modeling);
* :mod:`repro.events.plane` — the orchestrator wiring publish hooks,
  outboxes, the cluster's *shared uplink* (event bytes contend with frame
  uploads), the broker, and ingest into per-node and cluster
  :class:`~repro.events.plane.DeliveryReport`s plus a byte-stable delivery
  log.

This package never imports :mod:`repro.fleet` — the runtime owns a publish
hook; the plane duck-types it.  Everything here is simulated-clock pure:
same inputs, bit-identical outputs.
"""

from repro.events.broker import AttemptOutcome, BrokerConfig, SimulatedBroker
from repro.events.ingest import DatacenterIngest, IngestResult
from repro.events.outbox import NodeOutbox, OutboxConfig, OutboxEntry
from repro.events.plane import (
    DeliveryConfig,
    DeliveryReport,
    EventDeliveryPlane,
    nearest_rank_percentile,
)

__all__ = [
    "AttemptOutcome",
    "BrokerConfig",
    "DatacenterIngest",
    "DeliveryConfig",
    "DeliveryReport",
    "EventDeliveryPlane",
    "IngestResult",
    "NodeOutbox",
    "OutboxConfig",
    "OutboxEntry",
    "SimulatedBroker",
    "nearest_rank_percentile",
]
