"""The deterministic simulated event broker: a seeded QoS/loss model.

The broker models the lossy leg between an edge node's outbox and the
datacenter ingest.  Each publish *attempt* of an event record draws one of
three outcomes:

* ``LOST`` — the payload never arrives; the sender times out and retries;
* ``DELIVERED`` — the payload arrives and the ack returns; done;
* ``DELIVERED_ACK_LOST`` — the payload arrives but the ack is lost, so the
  sender retries a message the datacenter already has.  This is the outcome
  that exercises idempotent ingest: without event-key dedupe it produces a
  duplicate.

Outcomes are a pure function of ``(event key, attempt index, seed)`` — a
CRC32 hash mapped to a unit uniform — so a publish plan is computable
without any wall-clock or mutable RNG state, every rerun is bit-identical,
and an attempt's fate never depends on when the uplink got around to
carrying it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from enum import Enum

__all__ = ["AttemptOutcome", "BrokerConfig", "SimulatedBroker"]


class AttemptOutcome(Enum):
    """Fate of one publish attempt through the broker."""

    LOST = "lost"
    DELIVERED = "delivered"
    DELIVERED_ACK_LOST = "delivered_ack_lost"

    @property
    def reaches_datacenter(self) -> bool:
        """Whether the payload arrives (regardless of the ack's fate)."""
        return self is not AttemptOutcome.LOST

    @property
    def acked(self) -> bool:
        """Whether the sender receives the ack and stops retrying."""
        return self is AttemptOutcome.DELIVERED


@dataclass(frozen=True)
class BrokerConfig:
    """Loss model of the simulated broker."""

    loss_rate: float = 0.0
    ack_loss_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.ack_loss_rate < 1.0:
            raise ValueError("ack_loss_rate must be in [0, 1)")
        if self.loss_rate + self.ack_loss_rate >= 1.0:
            raise ValueError("loss_rate + ack_loss_rate must be below 1")


class SimulatedBroker:
    """Seeded per-attempt outcome oracle over the :class:`BrokerConfig`."""

    def __init__(self, config: BrokerConfig | None = None) -> None:
        self.config = config or BrokerConfig()

    def outcome(self, key: str, attempt: int) -> AttemptOutcome:
        """The deterministic fate of attempt ``attempt`` for event ``key``."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        draw = self._unit_uniform(key, attempt)
        if draw < self.config.loss_rate:
            return AttemptOutcome.LOST
        if draw < self.config.loss_rate + self.config.ack_loss_rate:
            return AttemptOutcome.DELIVERED_ACK_LOST
        return AttemptOutcome.DELIVERED

    def plan(self, key: str, max_attempts: int) -> list[AttemptOutcome]:
        """Outcomes of the attempts a retrying sender would actually make.

        The sender stops at the first acked attempt; the plan therefore has
        at most ``max_attempts`` entries and only its last one can be acked.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        outcomes: list[AttemptOutcome] = []
        for attempt in range(max_attempts):
            fate = self.outcome(key, attempt)
            outcomes.append(fate)
            if fate.acked:
                break
        return outcomes

    def _unit_uniform(self, key: str, attempt: int) -> float:
        token = f"{key}#{attempt}#{self.config.seed}".encode()
        return zlib.crc32(token) / 2**32
