"""The event delivery plane: outbox -> shared uplink -> broker -> ingest.

:class:`EventDeliveryPlane` wires one cluster's event path end to end:

1. each node's :class:`~repro.fleet.runtime.FleetRuntime` publish hook feeds
   records into a per-node :class:`~repro.events.outbox.NodeOutbox`
   (bounded; overflow drops are explicit);
2. every admitted attempt becomes a transfer on the cluster's *existing*
   shared uplink — event bytes contend with frame uploads for the same
   capacity, they do not get a free side channel;
3. the :class:`~repro.events.broker.SimulatedBroker` decides each attempt's
   fate (delivered / lost / ack lost) from a seeded hash;
4. delivered payloads land in the idempotent
   :class:`~repro.events.ingest.DatacenterIngest`, which dedupes by global
   event key and models consumer lag.

**Delivery latency** of a record is *first successful ingest completion
minus the record's close time* — it includes retransmit backoff, uplink
queueing behind frame uploads, and datacenter consumer lag.

The plane never imports :mod:`repro.fleet`; it duck-types the runtime
(``event_sink`` attribute, ``telemetry`` registry with ``counter`` /
``histogram``), which keeps the dependency arrow pointing one way.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.core.events import EventRecord
from repro.edge.uplink import SharedTransferRequest
from repro.events.broker import AttemptOutcome, BrokerConfig, SimulatedBroker
from repro.events.ingest import DatacenterIngest
from repro.events.outbox import NodeOutbox, OutboxConfig, OutboxEntry
from repro.obs.slo import DeliverySLOConfig

__all__ = [
    "DeliveryConfig",
    "DeliveryReport",
    "EventDeliveryPlane",
    "nearest_rank_percentile",
]

# Final states a published record can end a run in (the delivery log's
# ``state`` field).  "delivered_unacked" means the payload reached the
# datacenter but every ack was lost — the sender gave up, the record is
# safe; only dedupe distinguishes it from a duplicate storm.
STATE_ACKED = "acked"
STATE_DELIVERED_UNACKED = "delivered_unacked"
STATE_DEAD_LETTER = "dead_letter"
STATE_DROPPED_OVERFLOW = "dropped_overflow"


def nearest_rank_percentile(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ValueError("q must be in (0, 1]")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class DeliveryConfig:
    """End-to-end knobs of the delivery plane."""

    broker: BrokerConfig = field(default_factory=BrokerConfig)
    outbox: OutboxConfig = field(default_factory=OutboxConfig)
    consumer_rate_eps: float = 0.0
    record_bytes: int = 256
    slo: DeliverySLOConfig | None = None

    def __post_init__(self) -> None:
        if self.record_bytes < 1:
            raise ValueError("record_bytes must be at least 1")
        if self.consumer_rate_eps < 0:
            raise ValueError("consumer_rate_eps must be non-negative")


@dataclass(frozen=True)
class DeliveryReport:
    """Delivery accounting for one node (or ``scope="cluster"``).

    Fixed-size by construction: counts and percentiles only, never
    per-event lines — the same O(nodes) discipline the hierarchy plane's
    ``NodeAggregate`` enforces.
    """

    scope: str
    published: int = 0
    acked: int = 0
    delivered_unacked: int = 0
    dead_letter: int = 0
    dropped_overflow: int = 0
    retried: int = 0
    duped: int = 0
    ack_violations: int = 0
    latency_p50: float = 0.0
    latency_p99: float = 0.0
    max_consumer_lag: float = 0.0

    @property
    def delivered(self) -> int:
        """Records whose payload reached the datacenter exactly once."""
        return self.acked + self.delivered_unacked

    @property
    def dropped(self) -> int:
        """Records the plane lost: outbox overflow plus dead letters."""
        return self.dropped_overflow + self.dead_letter

    def to_dict(self) -> dict:
        """JSON-friendly form for report artifacts."""
        return {
            "scope": self.scope,
            "published": self.published,
            "acked": self.acked,
            "delivered_unacked": self.delivered_unacked,
            "dead_letter": self.dead_letter,
            "dropped_overflow": self.dropped_overflow,
            "retried": self.retried,
            "duped": self.duped,
            "ack_violations": self.ack_violations,
            "latency_p50": round(self.latency_p50, 6),
            "latency_p99": round(self.latency_p99, 6),
            "max_consumer_lag": round(self.max_consumer_lag, 6),
        }

    def summary(self) -> str:
        """A one-line human-readable delivery standing."""
        return (
            f"events[{self.scope}]: published {self.published} | "
            f"delivered {self.delivered} ({self.acked} acked) | "
            f"retried {self.retried}, duped {self.duped}, dropped {self.dropped} | "
            f"latency p50 {self.latency_p50:.3f}s p99 {self.latency_p99:.3f}s | "
            f"consumer lag max {self.max_consumer_lag:.3f}s"
        )


@dataclass
class _Publish:
    """One admitted record's full plan and (post-finalize) outcome."""

    node_id: str
    record: EventRecord
    entry: OutboxEntry
    outcomes: tuple[AttemptOutcome, ...]
    delivered_at: float | None = None
    dup_arrivals: int = 0

    @property
    def key(self) -> str:
        return str(self.record.key)

    @property
    def state(self) -> str:
        if self.outcomes[-1].acked:
            return STATE_ACKED
        if any(outcome.reaches_datacenter for outcome in self.outcomes):
            return STATE_DELIVERED_UNACKED
        return STATE_DEAD_LETTER


class EventDeliveryPlane:
    """Deterministic end-to-end event delivery over the shared uplink."""

    def __init__(self, config: DeliveryConfig | None = None) -> None:
        self.config = config or DeliveryConfig()
        self.broker = SimulatedBroker(self.config.broker)
        self.ingest = DatacenterIngest(self.config.consumer_rate_eps)
        self._outboxes: dict[str, NodeOutbox] = {}
        self._telemetry: dict[str, object] = {}
        self._publishes: list[_Publish] = []
        self._overflow_records: list[tuple[str, EventRecord]] = []
        self._finalized = False
        self.node_reports: dict[str, DeliveryReport] = {}
        self.cluster_report: DeliveryReport | None = None
        # Delivery-log lines (dicts, deterministic order) built at finalize.
        self.log_records: list[dict] = []

    # -- node attachment -----------------------------------------------------
    def attach(self, node_id: str, runtime) -> None:
        """Install this plane as ``runtime``'s publish hook.

        ``runtime`` duck-types :class:`repro.fleet.runtime.FleetRuntime`:
        only its ``event_sink`` attribute and ``telemetry`` registry are
        touched.
        """
        if node_id in self._outboxes:
            raise ValueError(f"node {node_id!r} is already attached")
        outbox = NodeOutbox(node_id, self.config.outbox)
        self._outboxes[node_id] = outbox
        self._telemetry[node_id] = runtime.telemetry
        runtime.event_sink = lambda record: self._publish(node_id, record)

    def _publish(self, node_id: str, record: EventRecord) -> None:
        if self._finalized:
            raise RuntimeError("cannot publish after finalize()")
        telemetry = self._telemetry[node_id]
        key = str(record.key)
        outcomes = tuple(self.broker.plan(key, self.config.outbox.max_attempts))
        entry = self._outboxes[node_id].offer(
            key, record.closed_at, self.config.record_bytes * 8, len(outcomes)
        )
        if entry is None:
            self._overflow_records.append((node_id, record))
            telemetry.counter("events.dropped").inc()
            return
        telemetry.counter("events.published").inc()
        if entry.attempts > 1:
            telemetry.counter("events.retried").inc(entry.attempts - 1)
        self._publishes.append(
            _Publish(node_id=node_id, record=record, entry=entry, outcomes=outcomes)
        )

    # -- uplink integration --------------------------------------------------
    def attempt_description(self, node_id: str, key: str, attempt: int) -> str:
        """The transfer description of one publish attempt (globally unique)."""
        return f"evt/{node_id}/{key}/a{attempt}"

    def transfer_requests(self) -> list[SharedTransferRequest]:
        """Every attempt of every admitted record, as shared-uplink requests.

        Event bytes ride the same link as frame uploads: the caller merges
        these with the frame transfer requests before draining the shared
        uplink, so event delivery contends for — and waits behind — video.
        """
        requests = [
            SharedTransferRequest(
                node_id=publish.node_id,
                bits=publish.entry.bits,
                available_at=send_time,
                description=self.attempt_description(publish.node_id, publish.key, attempt),
            )
            for publish in self._publishes
            for attempt, send_time in enumerate(publish.entry.send_times)
        ]
        requests.sort(key=lambda r: (r.available_at, r.node_id, r.description))
        return requests

    def node_ids(self) -> list[str]:
        """Attached nodes, in attach order."""
        return list(self._outboxes)

    # -- finalization --------------------------------------------------------
    def finalize(self, attempt_end_times: dict[str, float]) -> DeliveryReport:
        """Resolve every record's fate once the uplink replay has run.

        ``attempt_end_times`` maps each attempt's transfer description to
        the simulated time its last bit cleared the shared link (= arrival
        at the broker/datacenter).  Returns the cluster report; per-node
        reports land in :attr:`node_reports` and per-node telemetry gains
        the post-hoc delivery counters and the latency histogram.
        """
        if self._finalized:
            raise RuntimeError("finalize() may only be called once")
        self._finalized = True

        arrivals: list[tuple[float, str, _Publish]] = []
        for publish in self._publishes:
            for attempt, outcome in enumerate(publish.outcomes):
                if not outcome.reaches_datacenter:
                    continue
                description = self.attempt_description(
                    publish.node_id, publish.key, attempt
                )
                if description not in attempt_end_times:
                    raise KeyError(f"no uplink end time for attempt {description!r}")
                arrivals.append((attempt_end_times[description], description, publish))
        arrivals.sort(key=lambda a: (a[0], a[1]))

        for arrived_at, _, publish in arrivals:
            result = self.ingest.ingest(publish.key, arrived_at)
            if result.accepted:
                publish.delivered_at = result.completed_at
            else:
                publish.dup_arrivals += 1

        slo = self.config.slo
        per_node_latencies: dict[str, list[float]] = {n: [] for n in self._outboxes}
        counts: dict[str, dict[str, int]] = {
            n: {
                "published": 0,
                "acked": 0,
                "delivered_unacked": 0,
                "dead_letter": 0,
                "retried": 0,
                "duped": 0,
                "ack_violations": 0,
            }
            for n in self._outboxes
        }
        for publish in self._publishes:
            node = publish.node_id
            telemetry = self._telemetry[node]
            tally = counts[node]
            tally["published"] += 1
            tally["retried"] += publish.entry.attempts - 1
            state = publish.state
            if publish.dup_arrivals:
                tally["duped"] += publish.dup_arrivals
                telemetry.counter("events.duped").inc(publish.dup_arrivals)
            if state == STATE_ACKED:
                tally["acked"] += 1
                telemetry.counter("events.acked").inc()
            elif state == STATE_DELIVERED_UNACKED:
                tally["delivered_unacked"] += 1
            else:
                tally["dead_letter"] += 1
                telemetry.counter("events.dropped").inc()
            latency = None
            if publish.delivered_at is not None:
                latency = publish.delivered_at - publish.record.closed_at
                per_node_latencies[node].append(latency)
                telemetry.histogram("events.delivery_latency_seconds").observe(latency)
            if slo is not None and (latency is None or latency > slo.ack_latency_seconds):
                tally["ack_violations"] += 1
                telemetry.counter("events.ack_violations").inc()

        self.node_reports = {
            node: self._build_report(
                node,
                counts[node],
                per_node_latencies[node],
                self._outboxes[node].dropped,
            )
            for node in self._outboxes
        }
        all_latencies = [lat for lats in per_node_latencies.values() for lat in lats]
        cluster_counts = {
            metric: sum(counts[node][metric] for node in counts)
            for metric in next(iter(counts.values()), {})
        } or {
            "published": 0,
            "acked": 0,
            "delivered_unacked": 0,
            "dead_letter": 0,
            "retried": 0,
            "duped": 0,
            "ack_violations": 0,
        }
        self.cluster_report = self._build_report(
            "cluster",
            cluster_counts,
            all_latencies,
            sum(outbox.dropped for outbox in self._outboxes.values()),
        )
        self._build_log()
        return self.cluster_report

    def _build_report(
        self, scope: str, tally: dict[str, int], latencies: list[float], overflow: int
    ) -> DeliveryReport:
        latencies = sorted(latencies)
        return DeliveryReport(
            scope=scope,
            published=tally["published"],
            acked=tally["acked"],
            delivered_unacked=tally["delivered_unacked"],
            dead_letter=tally["dead_letter"],
            dropped_overflow=overflow,
            retried=tally["retried"],
            duped=tally["duped"],
            ack_violations=tally["ack_violations"],
            latency_p50=nearest_rank_percentile(latencies, 0.50),
            latency_p99=nearest_rank_percentile(latencies, 0.99),
            # The consumer is a datacenter-side (cluster) resource; its lag
            # has no per-node decomposition.
            max_consumer_lag=self.ingest.max_consumer_lag if scope == "cluster" else 0.0,
        )

    def _build_log(self) -> None:
        lines: list[dict] = []
        for publish in self._publishes:
            entry = publish.record.to_dict()
            entry.update(
                {
                    "node": publish.node_id,
                    "state": publish.state,
                    "attempts": publish.entry.attempts,
                    "dup_suppressed": publish.dup_arrivals,
                    "delivered_at": (
                        round(publish.delivered_at, 6)
                        if publish.delivered_at is not None
                        else None
                    ),
                    "latency": (
                        round(publish.delivered_at - publish.record.closed_at, 6)
                        if publish.delivered_at is not None
                        else None
                    ),
                }
            )
            lines.append(entry)
        for node_id, record in self._overflow_records:
            entry = record.to_dict()
            entry.update(
                {
                    "node": node_id,
                    "state": STATE_DROPPED_OVERFLOW,
                    "attempts": 0,
                    "dup_suppressed": 0,
                    "delivered_at": None,
                    "latency": None,
                }
            )
            lines.append(entry)
        lines.sort(key=lambda e: (e["closed_at"], e["key"]))
        self.log_records = lines

    def delivery_log_jsonl(self) -> str:
        """The delivery log as byte-stable JSONL (one record per line)."""
        if not self._finalized:
            raise RuntimeError("finalize() must run before exporting the delivery log")
        return "".join(
            json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
            for entry in self.log_records
        )
