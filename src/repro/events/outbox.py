"""The per-node outbox: bounded queue, retry schedule, exponential backoff.

Every edge node buffers the event records it publishes in an outbox.  The
outbox is *bounded*: a record offered while ``max_queue`` earlier records
are still occupying it is dropped on the floor (counted, surfaced in
telemetry — explicit backpressure, the same philosophy as the frame queues).

Retries are timeout-driven: attempt ``j`` is (re)sent at

    ``closed_at + sum(backoff(i) for i in range(j))``

where ``backoff(i) = min(base * 2**i, cap)`` — i.e. the sender waits one
backoff window for the ack of each attempt before retransmitting.  Send
times are therefore a pure function of the record's close time, independent
of when the shared uplink actually carries the bytes; combined with the
hash-seeded broker this keeps the whole delivery plan computable up front
and bit-identical across reruns.

Occupancy is modeled the same way: an admitted entry occupies a queue slot
from its close time until the ack of its final attempt would return (last
send time plus one more backoff window).  Offers must arrive in
non-decreasing ``closed_at`` order — the order the runtime closes events in.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["OutboxConfig", "OutboxEntry", "NodeOutbox"]


@dataclass(frozen=True)
class OutboxConfig:
    """Sizing and retry policy of a node's outbox."""

    max_queue: int = 1024
    max_retries: int = 8
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_seconds <= 0:
            raise ValueError("backoff_base_seconds must be positive")
        if self.backoff_cap_seconds < self.backoff_base_seconds:
            raise ValueError("backoff_cap_seconds must be at least the base")

    @property
    def max_attempts(self) -> int:
        """Total sends per record: the first try plus every retry."""
        return self.max_retries + 1

    def backoff(self, attempt: int) -> float:
        """Ack-wait window after attempt ``attempt`` (capped exponential)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.backoff_base_seconds * 2**attempt, self.backoff_cap_seconds)

    def send_time(self, closed_at: float, attempt: int) -> float:
        """When attempt ``attempt`` of a record closed at ``closed_at`` is sent."""
        return closed_at + sum(self.backoff(i) for i in range(attempt))


@dataclass(frozen=True)
class OutboxEntry:
    """One admitted record's publish plan: when each attempt goes out."""

    key: str
    closed_at: float
    bits: float
    send_times: tuple[float, ...]

    @property
    def attempts(self) -> int:
        """Sends this entry makes (1 = acked first try)."""
        return len(self.send_times)


class NodeOutbox:
    """Bounded, deterministic publish queue for one edge node."""

    def __init__(self, node_id: str, config: OutboxConfig | None = None) -> None:
        self.node_id = str(node_id)
        self.config = config or OutboxConfig()
        self.entries: list[OutboxEntry] = []
        self.dropped = 0
        self._last_offer_at = float("-inf")
        # Occupancy-end times of admitted entries still holding a slot; a
        # min-heap popped as offers advance the clock keeps admission O(log n).
        self._occupied: list[float] = []

    def offer(self, key: str, closed_at: float, bits: float, attempts: int) -> OutboxEntry | None:
        """Admit a record closing at ``closed_at`` that will make ``attempts`` sends.

        Returns the entry with its attempt send times, or ``None`` when the
        queue is full (an overflow drop).  ``attempts`` comes from the
        broker's plan for the record's key.
        """
        if closed_at < self._last_offer_at:
            raise ValueError("outbox offers must arrive in non-decreasing closed_at order")
        if not 1 <= attempts <= self.config.max_attempts:
            raise ValueError(f"attempts must be in [1, {self.config.max_attempts}]")
        self._last_offer_at = closed_at
        while self._occupied and self._occupied[0] <= closed_at:
            heapq.heappop(self._occupied)
        if len(self._occupied) >= self.config.max_queue:
            self.dropped += 1
            return None
        send_times = tuple(
            self.config.send_time(closed_at, attempt) for attempt in range(attempts)
        )
        entry = OutboxEntry(key=key, closed_at=closed_at, bits=bits, send_times=send_times)
        self.entries.append(entry)
        # The slot frees when the final attempt's ack window elapses.
        heapq.heappush(self._occupied, send_times[-1] + self.config.backoff(attempts - 1))
        return entry

    @property
    def occupancy(self) -> int:
        """Slots held as of the last offer."""
        return len(self._occupied)
