"""The :class:`Sequential` model container.

``Sequential`` chains layers, supports training-mode forward/backward
passes, reports analytic multiply-add costs, and exposes *named-layer taps*:
``forward_with_taps`` returns the activations of requested intermediate
layers.  Taps are how the FilterForward feature extractor serves base-DNN
activations (e.g. ``conv4_2/sep``) to microclassifiers.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.nn.layers import Layer, Parameter

__all__ = ["Sequential", "count_parameters"]


def count_parameters(parameters: Iterable[Parameter]) -> int:
    """Total number of scalar weights across ``parameters``."""
    return sum(p.size for p in parameters)


class Sequential:
    """A linear stack of layers.

    Parameters
    ----------
    layers:
        Layers applied in order.  Layer names must be unique; they are used
        for tap lookup and weight serialization.
    input_shape:
        Per-sample input shape (H, W, C) or (features,).  If given, the model
        is built immediately.
    rng:
        Random generator used to initialize weights (a fresh default
        generator seeded with 0 is used if omitted).
    name:
        Optional model name, used in error messages and serialization.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        input_shape: tuple[int, ...] | None = None,
        rng: np.random.Generator | None = None,
        name: str = "sequential",
    ) -> None:
        self.layers: list[Layer] = list(layers)
        self.name = name
        names = [layer.name for layer in self.layers]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"Duplicate layer names in model {name!r}: {sorted(duplicates)}")
        self.input_shape: tuple[int, ...] | None = None
        self.built = False
        if input_shape is not None:
            self.build(input_shape, rng or np.random.default_rng(0))

    # -- construction ------------------------------------------------------
    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        """Build every layer, threading shapes through the stack."""
        shape = tuple(int(s) for s in input_shape)
        self.input_shape = shape
        for layer in self.layers:
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
        self.output_shape_ = shape
        self.built = True

    def _require_built(self) -> None:
        if not self.built:
            raise RuntimeError(f"Model {self.name!r} used before build()")

    # -- execution ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers on a batch of inputs."""
        self._require_built()
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass."""
        return self.forward(x, training=False)

    def forward_with_taps(
        self, x: np.ndarray, taps: Sequence[str], training: bool = False
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Forward pass that also returns the activations of named layers.

        Parameters
        ----------
        x:
            Batch of inputs.
        taps:
            Layer names whose outputs should be captured.

        Returns
        -------
        (output, activations):
            Final output and a dict mapping each tap name to its activation.
        """
        self._require_built()
        wanted = set(taps)
        unknown = wanted - {layer.name for layer in self.layers}
        if unknown:
            raise KeyError(f"Unknown tap layer(s) {sorted(unknown)} in model {self.name!r}")
        activations: dict[str, np.ndarray] = {}
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
            if layer.name in wanted:
                activations[layer.name] = out
        return out, activations

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through all layers (requires a prior training-mode forward)."""
        self._require_built()
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # -- introspection -----------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All trainable parameters, in layer order."""
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def num_parameters(self) -> int:
        """Total scalar weight count."""
        return count_parameters(self.parameters())

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"No layer named {name!r} in model {self.name!r}")

    def layer_names(self) -> list[str]:
        """Names of all layers, in order."""
        return [layer.name for layer in self.layers]

    def layer_output_shapes(self) -> dict[str, tuple[int, ...]]:
        """Per-sample output shape of every layer, keyed by layer name."""
        self._require_built()
        shapes: dict[str, tuple[int, ...]] = {}
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            shapes[layer.name] = shape
        return shapes

    def multiply_adds(self, input_shape: tuple[int, ...] | None = None) -> int:
        """Total analytic multiply-adds for one sample.

        If ``input_shape`` is omitted, uses the shape the model was built with.
        """
        shape = tuple(input_shape) if input_shape is not None else self.input_shape
        if shape is None:
            raise RuntimeError("Provide input_shape or build the model first")
        total = 0
        for layer in self.layers:
            total += layer.multiply_adds(shape)
            shape = layer.output_shape(shape)
        return int(total)

    def per_layer_multiply_adds(
        self, input_shape: tuple[int, ...] | None = None
    ) -> dict[str, int]:
        """Per-layer analytic multiply-adds for one sample, keyed by layer name."""
        shape = tuple(input_shape) if input_shape is not None else self.input_shape
        if shape is None:
            raise RuntimeError("Provide input_shape or build the model first")
        costs: dict[str, int] = {}
        for layer in self.layers:
            costs[layer.name] = int(layer.multiply_adds(shape))
            shape = layer.output_shape(shape)
        return costs

    def state_dict(self) -> dict[str, np.ndarray]:
        """Weights keyed by parameter name (for serialization)."""
        return {p.name: p.value.copy() for p in self.parameters()}

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        """Load weights produced by :meth:`state_dict`."""
        params = {p.name: p for p in self.parameters()}
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"Missing weights for parameters: {sorted(missing)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"Shape mismatch for {name!r}: expected {param.value.shape}, "
                    f"got {value.shape}"
                )
            param.value = value.copy()
            param.zero_grad()

    def summary(self) -> str:
        """Human-readable per-layer summary (name, output shape, params, madds)."""
        self._require_built()
        lines = [f"Model: {self.name} (input {self.input_shape})"]
        shape = self.input_shape
        for layer in self.layers:
            madds = layer.multiply_adds(shape)
            shape = layer.output_shape(shape)
            n_params = count_parameters(layer.parameters())
            lines.append(
                f"  {layer.name:<40s} out={str(shape):<20s} params={n_params:<10d} madds={madds}"
            )
        lines.append(
            f"Total params: {self.num_parameters()}  Total madds: {self.multiply_adds()}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sequential(name={self.name!r}, layers={len(self.layers)})"
