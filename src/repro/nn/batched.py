"""Bit-exact batched inference over :mod:`repro.nn` layers.

The fleet's cross-camera batching (:mod:`repro.core.batched`) stacks many
cameras' frames into one ``(N, H, W, C)`` tensor and runs the shared base
DNN once.  That is only admissible if the batched forward produces *exactly*
the bits the per-camera ``N=1`` forward would have produced — probabilities
feed thresholds, thresholds feed events, events feed upload accounting, and
a one-ULP drift anywhere breaks the golden control trace.

A naive "stack and GEMM" does not satisfy that: BLAS chooses different
kernels and blocking (and thread partitions) by matrix size, so
``(N*P, K) @ (K, F)`` can differ in the last bits from the per-sample
``(P, K) @ (K, F)`` calls.  This module therefore batches *everything except
the GEMM row extents*:

* one ``im2col`` lowering over the whole stacked batch (one strided copy
  instead of N), whose rows are positionally identical to the per-sample
  lowerings;
* the convolution GEMM computed in **per-sample row blocks** — each block is
  the same ``(P, K) @ (K, F)`` problem, on the same contiguous row layout,
  the per-sample path hands BLAS, so each sample's output bits are identical
  by construction;
* bias add, activations, depthwise ``einsum``, pooling, and reshapes fully
  batched (all per-sample-independent, order-stable element operations).

:func:`batched_forward_with_taps` additionally stops at the deepest tapped
layer: the base DNN's untapped tail (half the network when tapping
``conv2_2/sep``) contributes nothing to any subscriber and is skipped.

Training is deliberately *not* routed through this module — the training
paths keep their historical single-GEMM batches (changing them would perturb
every trained weight downstream).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.nn.im2col import im2col
from repro.nn.layers import Conv2D, Dense, Layer, SeparableConv2D
from repro.nn.model import Sequential

__all__ = [
    "batched_conv2d_forward",
    "batched_dense_forward",
    "batched_layer_forward",
    "batched_forward",
    "batched_forward_with_taps",
]


def _chunked_gemm(rows: np.ndarray, weights: np.ndarray, samples: int) -> np.ndarray:
    """``rows @ weights`` computed in ``samples`` equal contiguous row blocks.

    Each block sees the exact GEMM problem (shape, contiguous layout) the
    per-sample forward pass would submit, so each sample's rows of the result
    are bit-identical to an ``N=1`` call regardless of how BLAS specializes
    by size.
    """
    per_sample = rows.shape[0] // samples
    out = np.empty((rows.shape[0], weights.shape[1]), dtype=np.result_type(rows, weights))
    for i in range(samples):
        start = i * per_sample
        np.matmul(rows[start : start + per_sample], weights, out=out[start : start + per_sample])
    return out


def batched_conv2d_forward(layer: Conv2D, x: np.ndarray) -> np.ndarray:
    """Inference forward of one :class:`Conv2D` over a stacked batch.

    Bit-identical per sample to ``layer.forward(x[i:i+1])``.  Pointwise
    (1x1, stride-1) convolutions skip the im2col lowering entirely: their
    column matrix is just the channel-flattened input, so the window copy is
    pure overhead.
    """
    if not layer.built:
        raise RuntimeError(f"Layer {layer.name} used before build()")
    kh, kw = layer.kernel_size
    n = x.shape[0]
    if (kh, kw) == (1, 1) and layer.stride == (1, 1):
        out_h, out_w = x.shape[1], x.shape[2]
        cols = np.ascontiguousarray(x.reshape(n * out_h * out_w, x.shape[3]))
    else:
        cols, (out_h, out_w), _ = im2col(x, layer.kernel_size, layer.stride, layer.padding)
    w_mat = layer.kernel.value.reshape(kh * kw * x.shape[3], layer.filters)
    out = _chunked_gemm(cols, w_mat, n)
    if layer.use_bias:
        out += layer.bias.value
    return out.reshape(n, out_h, out_w, layer.filters)


def batched_dense_forward(layer: Dense, x: np.ndarray) -> np.ndarray:
    """Inference forward of one :class:`Dense` over a stacked batch.

    Each sample flattens to a single GEMM row, so the per-sample block here
    is a one-row matmul — identical to what ``predict_proba`` submits.
    """
    if not layer.built:
        raise RuntimeError(f"Layer {layer.name} used before build()")
    flat = np.ascontiguousarray(x.reshape(x.shape[0], -1))
    out = _chunked_gemm(flat, layer.kernel.value, x.shape[0])
    if layer.use_bias:
        out += layer.bias.value
    return out


def batched_layer_forward(layer: Layer, x: np.ndarray) -> np.ndarray:
    """Batch-exact inference forward of any single layer.

    Conv/separable/dense layers route through the chunked-GEMM paths; every
    other layer's ``forward`` is already per-sample-stable over a batch
    (elementwise activations, per-window pooling, depthwise ``einsum``) and
    is called directly in inference mode.
    """
    if isinstance(layer, SeparableConv2D):
        return batched_conv2d_forward(
            layer.pointwise, batched_layer_forward(layer.depthwise, x)
        )
    if isinstance(layer, Conv2D):
        return batched_conv2d_forward(layer, x)
    if isinstance(layer, Dense):
        return batched_dense_forward(layer, x)
    return layer.forward(x, training=False)


def batched_forward(model: Sequential, x: np.ndarray) -> np.ndarray:
    """Batch-exact inference pass through a whole :class:`Sequential`."""
    model._require_built()
    out = x
    for layer in model.layers:
        out = batched_layer_forward(layer, out)
    return out


def batched_forward_with_taps(
    model: Sequential,
    x: np.ndarray,
    taps: Sequence[str],
    stop_at_last_tap: bool = True,
) -> Mapping[str, np.ndarray]:
    """Batch-exact forward collecting named-layer activations.

    The counterpart of :meth:`Sequential.forward_with_taps` for the batched
    inference path.  With ``stop_at_last_tap`` (the default) execution ends
    at the deepest tapped layer — layers past the last subscriber cannot
    change any tapped activation, so the untapped tail is skipped.

    Returns the activations dict only; callers of the batched path never
    consume the head output.
    """
    model._require_built()
    wanted = set(taps)
    if not wanted:
        raise ValueError("batched_forward_with_taps requires at least one tap")
    names = [layer.name for layer in model.layers]
    unknown = wanted - set(names)
    if unknown:
        raise KeyError(f"Unknown tap layer(s) {sorted(unknown)} in model {model.name!r}")
    last = max(i for i, name in enumerate(names) if name in wanted)
    layers = model.layers[: last + 1] if stop_at_last_tap else model.layers
    activations: dict[str, np.ndarray] = {}
    out = x
    for layer in layers:
        out = batched_layer_forward(layer, out)
        if layer.name in wanted:
            activations[layer.name] = out
    return activations
