"""Analytic multiply-add cost accounting.

These are exactly the formulas quoted in Section 4.5 of the paper:

* fully-connected layer over an ``H x W x M`` feature map with ``N`` units:
  ``N * H * W * M``
* convolutional layer with ``F`` filters of size ``K x K`` and stride ``S``:
  ``H/S * W/S * M * K^2 * F``
* separable ("factored") convolutional layer with the same parameters:
  ``H/S * W/S * M * (K^2 + F)``

Multiply-adds are the paper's proxy for marginal compute cost (Figure 7);
the throughput model in :mod:`repro.perf` converts them into frame rates.
"""

from __future__ import annotations

from repro.nn.model import Sequential

__all__ = [
    "dense_multiply_adds",
    "conv_multiply_adds",
    "separable_conv_multiply_adds",
    "model_multiply_adds",
]


def dense_multiply_adds(height: int, width: int, depth: int, units: int) -> int:
    """Multiply-adds of a fully-connected layer over an ``H x W x M`` map."""
    _validate(height=height, width=width, depth=depth, units=units)
    return int(units) * int(height) * int(width) * int(depth)


def conv_multiply_adds(
    height: int, width: int, depth: int, kernel: int, filters: int, stride: int = 1
) -> int:
    """Multiply-adds of a standard convolution (paper formula)."""
    _validate(height=height, width=width, depth=depth, kernel=kernel, filters=filters, stride=stride)
    out_h = -(-int(height) // int(stride))
    out_w = -(-int(width) // int(stride))
    return out_h * out_w * int(depth) * int(kernel) ** 2 * int(filters)


def separable_conv_multiply_adds(
    height: int, width: int, depth: int, kernel: int, filters: int, stride: int = 1
) -> int:
    """Multiply-adds of a depthwise-separable convolution (paper formula)."""
    _validate(height=height, width=width, depth=depth, kernel=kernel, filters=filters, stride=stride)
    out_h = -(-int(height) // int(stride))
    out_w = -(-int(width) // int(stride))
    return out_h * out_w * int(depth) * (int(kernel) ** 2 + int(filters))


def model_multiply_adds(model: Sequential, input_shape: tuple[int, ...] | None = None) -> int:
    """Total analytic multiply-adds of a built :class:`Sequential` model."""
    return model.multiply_adds(input_shape)


def _validate(**named_values: int) -> None:
    for name, value in named_values.items():
        if int(value) <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
