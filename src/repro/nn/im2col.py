"""im2col / col2im helpers for vectorized convolutions.

Convolutions are implemented by lowering the input into a matrix of sliding
windows (``im2col``) so the convolution itself becomes a single BLAS matrix
multiply.  This keeps all heavy lifting inside NumPy's compiled kernels, per
the project's "vectorize, don't loop" rule.

All tensors use the NHWC layout ``(batch, height, width, channels)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pad_same", "im2col", "col2im", "conv_output_size"]


def conv_output_size(size: int, kernel: int, stride: int, padding: str) -> int:
    """Spatial output size of a convolution along one dimension.

    ``same`` padding rounds up (TensorFlow semantics); ``valid`` uses only
    fully-covered windows.
    """
    if padding == "same":
        return int(np.ceil(size / stride))
    if padding == "valid":
        return (size - kernel) // stride + 1
    raise ValueError(f"Unknown padding {padding!r}; expected 'same' or 'valid'")


def _same_pad_amount(size: int, kernel: int, stride: int) -> tuple[int, int]:
    """Total (before, after) padding for 'same' output size along one dim."""
    out = int(np.ceil(size / stride))
    total = max((out - 1) * stride + kernel - size, 0)
    before = total // 2
    return before, total - before


def pad_same(x: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int]) -> np.ndarray:
    """Zero-pad an NHWC tensor so a strided convolution yields 'same' size."""
    ph = _same_pad_amount(x.shape[1], kernel[0], stride[0])
    pw = _same_pad_amount(x.shape[2], kernel[1], stride[1])
    if ph == (0, 0) and pw == (0, 0):
        return x
    return np.pad(x, ((0, 0), ph, pw, (0, 0)), mode="constant")


def im2col(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: str,
) -> tuple[np.ndarray, tuple[int, int], tuple[int, int, int, int]]:
    """Lower an NHWC tensor into sliding-window columns.

    Returns
    -------
    cols:
        Array of shape ``(batch * out_h * out_w, kh * kw * channels)``.
    out_size:
        ``(out_h, out_w)``.
    padded_shape:
        Shape of the padded input, needed by :func:`col2im`.
    """
    kh, kw = kernel
    sh, sw = stride
    if padding == "same":
        x = pad_same(x, kernel, stride)
    n, h, w, c = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"Kernel {kernel} with stride {stride} does not fit input of spatial "
            f"size {(h, w)} under {padding!r} padding"
        )
    # Strided view over sliding windows: (n, out_h, out_w, kh, kw, c).
    s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, out_h, out_w, kh, kw, c),
        strides=(s[0], s[1] * sh, s[2] * sw, s[1], s[2], s[3]),
        writeable=False,
    )
    cols = windows.reshape(n * out_h * out_w, kh * kw * c)
    return np.ascontiguousarray(cols), (out_h, out_w), (n, h, w, c)


def col2im(
    cols: np.ndarray,
    padded_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
    out_size: tuple[int, int],
    original_spatial: tuple[int, int],
    padding: str,
) -> np.ndarray:
    """Scatter-add column gradients back into an NHWC input gradient.

    This is the adjoint of :func:`im2col` and is used by the convolution
    backward pass.
    """
    kh, kw = kernel
    sh, sw = stride
    n, h, w, c = padded_shape
    out_h, out_w = out_size
    grad = np.zeros((n, h, w, c), dtype=cols.dtype)
    cols = cols.reshape(n, out_h, out_w, kh, kw, c)
    # Scatter each kernel offset in one vectorized slice-add.
    for i in range(kh):
        h_end = i + sh * out_h
        for j in range(kw):
            w_end = j + sw * out_w
            grad[:, i:h_end:sh, j:w_end:sw, :] += cols[:, :, :, i, j, :]
    if padding == "same":
        oh, ow = original_spatial
        ph = _same_pad_amount(oh, kh, sh)
        pw = _same_pad_amount(ow, kw, sw)
        grad = grad[:, ph[0] : ph[0] + oh, pw[0] : pw[0] + ow, :]
    return grad
