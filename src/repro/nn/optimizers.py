"""Gradient-descent optimizers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["Optimizer", "SGD", "Momentum", "Adam"]


class Optimizer(ABC):
    """Base class: applies accumulated gradients to a set of parameters."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    @abstractmethod
    def step(self, parameters: Iterable[Parameter]) -> None:
        """Update each parameter in place from its ``grad`` field."""

    @staticmethod
    def zero_grad(parameters: Iterable[Parameter]) -> None:
        """Clear accumulated gradients."""
        for p in parameters:
            p.zero_grad()


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def step(self, parameters: Iterable[Parameter]) -> None:
        for p in parameters:
            p.value -= self.learning_rate * p.grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, parameters: Iterable[Parameter]) -> None:
        for p in parameters:
            v = self._velocity.get(id(p))
            if v is None:
                v = np.zeros_like(p.value)
            v = self.momentum * v - self.learning_rate * p.grad
            self._velocity[id(p)] = v
            p.value += v


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, parameters: Iterable[Parameter]) -> None:
        self._t += 1
        lr_t = self.learning_rate * (
            np.sqrt(1.0 - self.beta2**self._t) / (1.0 - self.beta1**self._t)
        )
        for p in parameters:
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.value)
                v = np.zeros_like(p.value)
            m = self.beta1 * m + (1.0 - self.beta1) * p.grad
            v = self.beta2 * v + (1.0 - self.beta2) * (p.grad**2)
            self._m[id(p)] = m
            self._v[id(p)] = v
            p.value -= lr_t * m / (np.sqrt(v) + self.epsilon)
