"""Weight initializers.

Initializers are deterministic given a :class:`numpy.random.Generator`,
which keeps every experiment in the repository reproducible end to end.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "Initializer",
    "Constant",
    "GlorotUniform",
    "HeNormal",
    "Orthogonal",
    "initializer_from_name",
]


class Initializer(ABC):
    """Base class for weight initializers."""

    @abstractmethod
    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Return an array of ``shape`` drawn from this initializer."""

    @staticmethod
    def _fan_in_out(shape: Sequence[int]) -> tuple[int, int]:
        """Compute (fan_in, fan_out) for dense and convolutional kernels.

        Dense kernels are ``(in, out)``.  Convolution kernels are
        ``(kh, kw, in, out)``; the receptive field multiplies both fans.
        """
        shape = tuple(int(s) for s in shape)
        if len(shape) == 1:
            return shape[0], shape[0]
        if len(shape) == 2:
            return shape[0], shape[1]
        receptive = int(np.prod(shape[:-2]))
        return receptive * shape[-2], receptive * shape[-1]


class Constant(Initializer):
    """Fill with a constant value (used for biases)."""

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return np.full(shape, self.value, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constant({self.value})"


class GlorotUniform(Initializer):
    """Glorot/Xavier uniform initializer, suited to sigmoid/linear outputs."""

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = self._fan_in_out(shape)
        limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
        return rng.uniform(-limit, limit, size=shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "GlorotUniform()"


class HeNormal(Initializer):
    """He normal initializer, suited to ReLU-family activations."""

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = self._fan_in_out(shape)
        std = np.sqrt(2.0 / max(fan_in, 1))
        return rng.normal(0.0, std, size=shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "HeNormal()"


class Orthogonal(Initializer):
    """Orthogonal initializer (useful for small dense heads)."""

    def __init__(self, gain: float = 1.0) -> None:
        self.gain = float(gain)

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        shape = tuple(int(s) for s in shape)
        flat_rows = int(np.prod(shape[:-1])) if len(shape) > 1 else shape[0]
        flat_cols = shape[-1] if len(shape) > 1 else 1
        a = rng.normal(0.0, 1.0, size=(max(flat_rows, flat_cols), min(flat_rows, flat_cols)))
        q, r = np.linalg.qr(a)
        q = q * np.sign(np.diag(r))
        q = q[:flat_rows, :flat_cols] if flat_rows >= flat_cols else q.T[:flat_rows, :flat_cols]
        return (self.gain * q).reshape(shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Orthogonal(gain={self.gain})"


_REGISTRY = {
    "constant": Constant,
    "glorot_uniform": GlorotUniform,
    "he_normal": HeNormal,
    "orthogonal": Orthogonal,
}


def initializer_from_name(name: str, **kwargs) -> Initializer:
    """Look up an initializer by its registry name.

    Parameters
    ----------
    name:
        One of ``constant``, ``glorot_uniform``, ``he_normal``, ``orthogonal``.
    kwargs:
        Forwarded to the initializer constructor.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"Unknown initializer {name!r}; expected one of {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](**kwargs)
