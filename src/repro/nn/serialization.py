"""Model weight (de)serialization.

Microclassifiers are trained offline by application developers and deployed
to edge nodes as "network weights and architecture specification" (paper
Section 3.2).  These helpers persist :class:`~repro.nn.model.Sequential`
weights to ``.npz`` archives so deployment can be exercised end to end.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.model import Sequential

__all__ = ["save_weights", "load_weights"]

_METADATA_KEY = "__repro_metadata__"


def save_weights(model: Sequential, path: str | Path) -> Path:
    """Save a model's weights (plus name and input shape) to ``path``.

    Returns the path written (with ``.npz`` suffix appended if missing).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    state = model.state_dict()
    metadata = {
        "model_name": model.name,
        "input_shape": list(model.input_shape) if model.input_shape else None,
        "parameter_names": list(state.keys()),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state, **{_METADATA_KEY: np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8)})
    return path


def load_weights(model: Sequential, path: str | Path, strict: bool = True) -> dict:
    """Load weights saved by :func:`save_weights` into ``model``.

    Parameters
    ----------
    model:
        A built model whose parameter names/shapes match the archive.
    path:
        Archive produced by :func:`save_weights`.
    strict:
        If True (default), verify that the archived model name matches.

    Returns
    -------
    dict
        The metadata stored alongside the weights.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(bytes(archive[_METADATA_KEY]).decode())
        state = {k: archive[k] for k in archive.files if k != _METADATA_KEY}
    if strict and metadata.get("model_name") != model.name:
        raise ValueError(
            f"Archive was saved from model {metadata.get('model_name')!r}, "
            f"but target model is {model.name!r} (pass strict=False to override)"
        )
    model.load_state_dict(state)
    return metadata
