"""Loss functions for training microclassifiers and discrete classifiers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Loss",
    "MeanSquaredError",
    "BinaryCrossEntropy",
    "SigmoidBinaryCrossEntropy",
]

_EPS = 1e-12


class Loss(ABC):
    """A differentiable scalar loss over a batch of predictions."""

    @abstractmethod
    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abstractmethod
    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss with respect to ``predictions``."""

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


def _align(predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64).reshape(predictions.shape)
    return predictions, targets


class MeanSquaredError(Loss):
    """Mean squared error."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = _align(predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = _align(predictions, targets)
        return 2.0 * (predictions - targets) / predictions.size


class BinaryCrossEntropy(Loss):
    """Binary cross-entropy on probabilities in (0, 1).

    Supports per-class weighting to compensate for the heavy class imbalance
    in surveillance video (interesting events are rare).
    """

    def __init__(self, positive_weight: float = 1.0) -> None:
        if positive_weight <= 0:
            raise ValueError("positive_weight must be positive")
        self.positive_weight = float(positive_weight)

    def _weights(self, targets: np.ndarray) -> np.ndarray:
        return np.where(targets > 0.5, self.positive_weight, 1.0)

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = _align(predictions, targets)
        p = np.clip(predictions, _EPS, 1.0 - _EPS)
        w = self._weights(targets)
        losses = -(targets * np.log(p) + (1.0 - targets) * np.log(1.0 - p))
        return float(np.mean(w * losses))

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = _align(predictions, targets)
        p = np.clip(predictions, _EPS, 1.0 - _EPS)
        w = self._weights(targets)
        grad = w * (p - targets) / (p * (1.0 - p))
        return grad / predictions.size


class SigmoidBinaryCrossEntropy(Loss):
    """Numerically stable BCE computed directly on logits.

    Prefer this over stacking :class:`~repro.nn.layers.Sigmoid` +
    :class:`BinaryCrossEntropy` when training: the combined gradient
    ``sigmoid(z) - y`` avoids saturation.
    """

    def __init__(self, positive_weight: float = 1.0) -> None:
        if positive_weight <= 0:
            raise ValueError("positive_weight must be positive")
        self.positive_weight = float(positive_weight)

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z, dtype=np.float64)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def _weights(self, targets: np.ndarray) -> np.ndarray:
        return np.where(targets > 0.5, self.positive_weight, 1.0)

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits, targets = _align(logits, targets)
        # log(1 + exp(-|z|)) + max(z, 0) - z*y is the standard stable form.
        losses = np.maximum(logits, 0.0) - logits * targets + np.log1p(np.exp(-np.abs(logits)))
        return float(np.mean(self._weights(targets) * losses))

    def backward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        logits, targets = _align(logits, targets)
        grad = self._weights(targets) * (self._sigmoid(logits) - targets)
        return grad / logits.size
