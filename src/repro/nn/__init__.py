"""A from-scratch NumPy deep-learning framework.

This subpackage is the substrate that replaces Caffe/TensorFlow in the
FilterForward paper.  It provides exactly the building blocks needed by the
base DNN (MobileNet-style depthwise-separable CNN), the three microclassifier
architectures, and the NoScope-style discrete classifiers:

* layers with forward/backward passes (:mod:`repro.nn.layers`),
* parameter initializers (:mod:`repro.nn.initializers`),
* losses (:mod:`repro.nn.losses`),
* optimizers (:mod:`repro.nn.optimizers`),
* a :class:`~repro.nn.model.Sequential` container with named-layer taps,
* analytic multiply-add cost accounting (:mod:`repro.nn.cost`),
* weight (de)serialization (:mod:`repro.nn.serialization`).

All tensors use the NHWC layout ``(batch, height, width, channels)``, which
matches the ``H x W x C`` feature-map dimensions quoted in the paper.
"""

from repro.nn.batched import (
    batched_conv2d_forward,
    batched_dense_forward,
    batched_forward,
    batched_forward_with_taps,
    batched_layer_forward,
)
from repro.nn.initializers import (
    HeNormal,
    Initializer,
    Constant,
    GlorotUniform,
    Orthogonal,
    initializer_from_name,
)
from repro.nn.layers import (
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAveragePool,
    GlobalMaxPool,
    Layer,
    MaxPool2D,
    Parameter,
    ReLU,
    ReLU6,
    SeparableConv2D,
    Sigmoid,
    Softmax,
)
from repro.nn.losses import (
    BinaryCrossEntropy,
    Loss,
    MeanSquaredError,
    SigmoidBinaryCrossEntropy,
)
from repro.nn.model import Sequential, count_parameters
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer
from repro.nn.cost import (
    conv_multiply_adds,
    dense_multiply_adds,
    model_multiply_adds,
    separable_conv_multiply_adds,
)
from repro.nn.serialization import load_weights, save_weights

__all__ = [
    "Adam",
    "BinaryCrossEntropy",
    "Concat",
    "Constant",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "Dropout",
    "Flatten",
    "GlobalAveragePool",
    "GlobalMaxPool",
    "GlorotUniform",
    "HeNormal",
    "Initializer",
    "Layer",
    "Loss",
    "MaxPool2D",
    "MeanSquaredError",
    "Momentum",
    "Optimizer",
    "Orthogonal",
    "Parameter",
    "ReLU",
    "ReLU6",
    "SGD",
    "SeparableConv2D",
    "Sequential",
    "Sigmoid",
    "SigmoidBinaryCrossEntropy",
    "Softmax",
    "batched_conv2d_forward",
    "batched_dense_forward",
    "batched_forward",
    "batched_forward_with_taps",
    "batched_layer_forward",
    "conv_multiply_adds",
    "count_parameters",
    "dense_multiply_adds",
    "initializer_from_name",
    "load_weights",
    "model_multiply_adds",
    "save_weights",
    "separable_conv_multiply_adds",
]
