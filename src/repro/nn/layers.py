"""Neural-network layers with forward and backward passes.

Every layer used by the FilterForward paper's models is implemented here:

* :class:`Conv2D` and :class:`DepthwiseConv2D`/:class:`SeparableConv2D`
  (MobileNet-style base DNN, microclassifier bodies, discrete classifiers),
* :class:`Dense` fully-connected heads,
* :class:`MaxPool2D`, :class:`GlobalMaxPool` (the "max over the grid of
  logits" in the full-frame object detector), :class:`GlobalAveragePool`,
* :class:`ReLU`, :class:`ReLU6`, :class:`Sigmoid`, :class:`Softmax`,
  :class:`Dropout`, :class:`Flatten`, and :class:`Concat`.

Layers are stateful: ``forward`` caches whatever the subsequent ``backward``
needs.  All activations use NHWC layout.  Cost accounting follows the
multiply-add formulas in Section 4.5 of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.initializers import Constant, GlorotUniform, HeNormal, Initializer

__all__ = [
    "Parameter",
    "Layer",
    "Conv2D",
    "DepthwiseConv2D",
    "SeparableConv2D",
    "Dense",
    "Flatten",
    "MaxPool2D",
    "GlobalMaxPool",
    "GlobalAveragePool",
    "ReLU",
    "ReLU6",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "Concat",
]


@dataclass
class Parameter:
    """A trainable tensor and its accumulated gradient."""

    name: str
    value: np.ndarray
    grad: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.value = np.asarray(self.value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    @property
    def size(self) -> int:
        """Number of scalar weights in this parameter."""
        return int(self.value.size)


def _as_pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"Expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


class Layer(ABC):
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`; layers with
    weights also implement :meth:`build` and expose them via
    :meth:`parameters`.
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name or f"{type(self).__name__.lower()}_{id(self) & 0xFFFF:x}"
        self.built = False

    # -- construction ------------------------------------------------------
    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters for the given per-sample input shape."""
        self.built = True

    # -- execution ---------------------------------------------------------
    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer on a batch of inputs."""

    @abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad`` (dL/d output) and return dL/d input."""

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    # -- introspection -----------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (possibly empty)."""
        return []

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Per-sample output shape produced from ``input_shape``."""
        return tuple(input_shape)

    def multiply_adds(self, input_shape: tuple[int, ...]) -> int:
        """Analytic multiply-add count for one sample of ``input_shape``."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class Conv2D(Layer):
    """Standard 2-D convolution over NHWC inputs.

    Parameters
    ----------
    filters:
        Number of output channels ``F``.
    kernel_size:
        Receptive-field size ``K`` (int or pair).
    stride:
        Spatial stride ``S``.
    padding:
        ``"same"`` or ``"valid"``.
    use_bias:
        Whether to add a per-filter bias.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: str = "same",
        use_bias: bool = True,
        kernel_initializer: Initializer | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if filters <= 0:
            raise ValueError("filters must be positive")
        self.filters = int(filters)
        self.kernel_size = _as_pair(kernel_size)
        self.stride = _as_pair(stride)
        if padding not in ("same", "valid"):
            raise ValueError(f"padding must be 'same' or 'valid', got {padding!r}")
        self.padding = padding
        self.use_bias = bool(use_bias)
        self.kernel_initializer = kernel_initializer or HeNormal()
        self.kernel: Parameter | None = None
        self.bias: Parameter | None = None
        self._cache: dict | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        h, w, c = input_shape
        kh, kw = self.kernel_size
        self.kernel = Parameter(
            f"{self.name}/kernel",
            self.kernel_initializer((kh, kw, c, self.filters), rng),
        )
        if self.use_bias:
            self.bias = Parameter(f"{self.name}/bias", Constant(0.0)((self.filters,), rng))
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not self.built:
            raise RuntimeError(f"Layer {self.name} used before build()")
        kh, kw = self.kernel_size
        cols, (out_h, out_w), padded_shape = im2col(x, self.kernel_size, self.stride, self.padding)
        w_mat = self.kernel.value.reshape(kh * kw * x.shape[3], self.filters)
        out = cols @ w_mat
        if self.use_bias:
            out += self.bias.value
        out = out.reshape(x.shape[0], out_h, out_w, self.filters)
        if training:
            self._cache = {
                "cols": cols,
                "padded_shape": padded_shape,
                "out_size": (out_h, out_w),
                "input_spatial": (x.shape[1], x.shape[2]),
                "in_channels": x.shape[3],
            }
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"backward() before forward(training=True) in {self.name}")
        cache = self._cache
        kh, kw = self.kernel_size
        in_c = cache["in_channels"]
        grad_mat = grad.reshape(-1, self.filters)
        self.kernel.grad += (cache["cols"].T @ grad_mat).reshape(kh, kw, in_c, self.filters)
        if self.use_bias:
            self.bias.grad += grad_mat.sum(axis=0)
        w_mat = self.kernel.value.reshape(kh * kw * in_c, self.filters)
        cols_grad = grad_mat @ w_mat.T
        return col2im(
            cols_grad,
            cache["padded_shape"],
            self.kernel_size,
            self.stride,
            cache["out_size"],
            cache["input_spatial"],
            self.padding,
        )

    def parameters(self) -> list[Parameter]:
        params = [self.kernel] if self.kernel is not None else []
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        h, w, _ = input_shape
        out_h = conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding)
        out_w = conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding)
        return (out_h, out_w, self.filters)

    def multiply_adds(self, input_shape: tuple[int, ...]) -> int:
        h, w, c = input_shape
        out_h, out_w, _ = self.output_shape(input_shape)
        kh, kw = self.kernel_size
        return int(out_h * out_w * c * kh * kw * self.filters)


class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution: one spatial filter per input channel."""

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: str = "same",
        use_bias: bool = True,
        kernel_initializer: Initializer | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.kernel_size = _as_pair(kernel_size)
        self.stride = _as_pair(stride)
        if padding not in ("same", "valid"):
            raise ValueError(f"padding must be 'same' or 'valid', got {padding!r}")
        self.padding = padding
        self.use_bias = bool(use_bias)
        self.kernel_initializer = kernel_initializer or HeNormal()
        self.kernel: Parameter | None = None
        self.bias: Parameter | None = None
        self.channels: int | None = None
        self._cache: dict | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        _, _, c = input_shape
        kh, kw = self.kernel_size
        self.channels = int(c)
        self.kernel = Parameter(
            f"{self.name}/depthwise_kernel",
            self.kernel_initializer((kh, kw, c), rng),
        )
        if self.use_bias:
            self.bias = Parameter(f"{self.name}/bias", Constant(0.0)((c,), rng))
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not self.built:
            raise RuntimeError(f"Layer {self.name} used before build()")
        kh, kw = self.kernel_size
        c = x.shape[3]
        cols, (out_h, out_w), padded_shape = im2col(x, self.kernel_size, self.stride, self.padding)
        # cols: (N*out_h*out_w, kh*kw*c) -> (N*out_h*out_w, kh*kw, c)
        windows = cols.reshape(-1, kh * kw, c)
        kernel = self.kernel.value.reshape(kh * kw, c)
        out = np.einsum("nkc,kc->nc", windows, kernel)
        if self.use_bias:
            out += self.bias.value
        out = out.reshape(x.shape[0], out_h, out_w, c)
        if training:
            self._cache = {
                "windows": windows,
                "padded_shape": padded_shape,
                "out_size": (out_h, out_w),
                "input_spatial": (x.shape[1], x.shape[2]),
            }
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"backward() before forward(training=True) in {self.name}")
        cache = self._cache
        kh, kw = self.kernel_size
        c = self.channels
        grad_mat = grad.reshape(-1, c)
        self.kernel.grad += np.einsum("nkc,nc->kc", cache["windows"], grad_mat).reshape(kh, kw, c)
        if self.use_bias:
            self.bias.grad += grad_mat.sum(axis=0)
        kernel = self.kernel.value.reshape(kh * kw, c)
        cols_grad = np.einsum("nc,kc->nkc", grad_mat, kernel).reshape(-1, kh * kw * c)
        return col2im(
            cols_grad,
            cache["padded_shape"],
            self.kernel_size,
            self.stride,
            cache["out_size"],
            cache["input_spatial"],
            self.padding,
        )

    def parameters(self) -> list[Parameter]:
        params = [self.kernel] if self.kernel is not None else []
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        h, w, c = input_shape
        out_h = conv_output_size(h, self.kernel_size[0], self.stride[0], self.padding)
        out_w = conv_output_size(w, self.kernel_size[1], self.stride[1], self.padding)
        return (out_h, out_w, c)

    def multiply_adds(self, input_shape: tuple[int, ...]) -> int:
        h, w, c = input_shape
        out_h, out_w, _ = self.output_shape(input_shape)
        kh, kw = self.kernel_size
        return int(out_h * out_w * c * kh * kw)


class SeparableConv2D(Layer):
    """Depthwise-separable convolution (depthwise followed by 1x1 pointwise).

    This is the "factored" convolution whose multiply-add count the paper
    quotes as ``H/S * W/S * M * (K^2 + F)``.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: str = "same",
        use_bias: bool = True,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.filters = int(filters)
        self.kernel_size = _as_pair(kernel_size)
        self.stride = _as_pair(stride)
        self.padding = padding
        self.depthwise = DepthwiseConv2D(
            kernel_size, stride, padding, use_bias=False, name=f"{self.name}/depthwise"
        )
        self.pointwise = Conv2D(
            filters, 1, 1, "same", use_bias=use_bias, name=f"{self.name}/pointwise"
        )

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        self.depthwise.build(input_shape, rng)
        mid_shape = self.depthwise.output_shape(input_shape)
        self.pointwise.build(mid_shape, rng)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.pointwise.forward(self.depthwise.forward(x, training), training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.depthwise.backward(self.pointwise.backward(grad))

    def parameters(self) -> list[Parameter]:
        return self.depthwise.parameters() + self.pointwise.parameters()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return self.pointwise.output_shape(self.depthwise.output_shape(input_shape))

    def multiply_adds(self, input_shape: tuple[int, ...]) -> int:
        h, w, c = input_shape
        out_h, out_w, _ = self.output_shape(input_shape)
        kh, kw = self.kernel_size
        return int(out_h * out_w * c * (kh * kw + self.filters))


class Dense(Layer):
    """Fully-connected layer over flattened per-sample features."""

    def __init__(
        self,
        units: int,
        use_bias: bool = True,
        kernel_initializer: Initializer | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError("units must be positive")
        self.units = int(units)
        self.use_bias = bool(use_bias)
        self.kernel_initializer = kernel_initializer or GlorotUniform()
        self.kernel: Parameter | None = None
        self.bias: Parameter | None = None
        self._cache: np.ndarray | None = None

    @staticmethod
    def _flatten(x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        in_features = int(np.prod(input_shape))
        self.kernel = Parameter(
            f"{self.name}/kernel", self.kernel_initializer((in_features, self.units), rng)
        )
        if self.use_bias:
            self.bias = Parameter(f"{self.name}/bias", Constant(0.0)((self.units,), rng))
        self._input_shape = tuple(int(s) for s in input_shape)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not self.built:
            raise RuntimeError(f"Layer {self.name} used before build()")
        flat = self._flatten(x)
        out = flat @ self.kernel.value
        if self.use_bias:
            out += self.bias.value
        if training:
            self._cache = flat
            self._batch_input_shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"backward() before forward(training=True) in {self.name}")
        self.kernel.grad += self._cache.T @ grad
        if self.use_bias:
            self.bias.grad += grad.sum(axis=0)
        return (grad @ self.kernel.value.T).reshape(self._batch_input_shape)

    def parameters(self) -> list[Parameter]:
        params = [self.kernel] if self.kernel is not None else []
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (self.units,)

    def multiply_adds(self, input_shape: tuple[int, ...]) -> int:
        # Paper Section 4.5: N * H * W * M for an H x W x M feature map.
        return int(np.prod(input_shape)) * self.units


class Flatten(Layer):
    """Flatten per-sample dimensions into a vector."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._input_shape)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class MaxPool2D(Layer):
    """Max pooling over non-overlapping (or strided) spatial windows."""

    def __init__(
        self,
        pool_size: int | tuple[int, int] = 2,
        stride: int | tuple[int, int] | None = None,
        padding: str = "valid",
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        self.pool_size = _as_pair(pool_size)
        self.stride = _as_pair(stride) if stride is not None else self.pool_size
        self.padding = padding
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, (out_h, out_w), padded_shape = im2col(x, self.pool_size, self.stride, self.padding)
        kh, kw = self.pool_size
        c = x.shape[3]
        windows = cols.reshape(-1, kh * kw, c)
        idx = windows.argmax(axis=1)
        out = np.take_along_axis(windows, idx[:, None, :], axis=1)[:, 0, :]
        out = out.reshape(x.shape[0], out_h, out_w, c)
        if training:
            self._cache = {
                "idx": idx,
                "windows_shape": windows.shape,
                "padded_shape": padded_shape,
                "out_size": (out_h, out_w),
                "input_spatial": (x.shape[1], x.shape[2]),
            }
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cache = self._cache
        kh, kw = self.pool_size
        windows_grad = np.zeros(cache["windows_shape"], dtype=grad.dtype)
        grad_mat = grad.reshape(-1, grad.shape[3])
        np.put_along_axis(windows_grad, cache["idx"][:, None, :], grad_mat[:, None, :], axis=1)
        cols_grad = windows_grad.reshape(-1, kh * kw * grad.shape[3])
        return col2im(
            cols_grad,
            cache["padded_shape"],
            self.pool_size,
            self.stride,
            cache["out_size"],
            cache["input_spatial"],
            self.padding,
        )

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        h, w, c = input_shape
        out_h = conv_output_size(h, self.pool_size[0], self.stride[0], self.padding)
        out_w = conv_output_size(w, self.pool_size[1], self.stride[1], self.padding)
        return (out_h, out_w, c)


class GlobalMaxPool(Layer):
    """Max over all spatial positions, per channel.

    The full-frame object detector microclassifier uses this to aggregate a
    grid of per-location logits into a single frame-level logit ("looking
    for >= 1 objects").
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, h, w, c = x.shape
        flat = x.reshape(n, h * w, c)
        idx = flat.argmax(axis=1)
        out = np.take_along_axis(flat, idx[:, None, :], axis=1)[:, 0, :]
        if training:
            self._cache = {"idx": idx, "shape": x.shape}
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, h, w, c = self._cache["shape"]
        flat_grad = np.zeros((n, h * w, c), dtype=grad.dtype)
        np.put_along_axis(flat_grad, self._cache["idx"][:, None, :], grad[:, None, :], axis=1)
        return flat_grad.reshape(n, h, w, c)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (input_shape[2],)


class GlobalAveragePool(Layer):
    """Mean over all spatial positions, per channel (MobileNet head)."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, h, w, c = self._shape
        return np.broadcast_to(grad[:, None, None, :] / (h * w), (n, h, w, c)).copy()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (input_shape[2],)


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class ReLU6(Layer):
    """ReLU clipped at 6 (used by the localized binary classifier head)."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = (x > 0) & (x < 6.0)
        return np.clip(x, 0.0, 6.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        if training:
            self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._out * (1.0 - self._out)


class Softmax(Layer):
    """Softmax over the last axis (used by the MobileNet classification head)."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=-1, keepdims=True)
        if training:
            self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = self._out
        dot = (grad * out).sum(axis=-1, keepdims=True)
        return out * (grad - dot)


class Dropout(Layer):
    """Inverted dropout (active only when ``training=True``)."""

    def __init__(self, rate: float = 0.5, seed: int = 0, name: str | None = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Concat(Layer):
    """Channel-wise concatenation of multiple NHWC tensors.

    Used by the windowed, localized binary classifier to depthwise-concat the
    per-frame 1x1-convolution outputs of a temporal window.  Unlike other
    layers, ``forward`` takes a *list* of inputs and ``backward`` returns a
    list of per-input gradients.
    """

    def __init__(self, axis: int = -1, name: str | None = None) -> None:
        super().__init__(name)
        self.axis = axis
        self._splits: list[int] | None = None

    def forward(self, inputs: Sequence[np.ndarray], training: bool = False) -> np.ndarray:  # type: ignore[override]
        arrays = list(inputs)
        if not arrays:
            raise ValueError("Concat requires at least one input")
        if training:
            sizes = [a.shape[self.axis] for a in arrays]
            self._splits = list(np.cumsum(sizes[:-1]))
        return np.concatenate(arrays, axis=self.axis)

    def backward(self, grad: np.ndarray) -> list[np.ndarray]:  # type: ignore[override]
        return np.split(grad, self._splits, axis=self.axis)

    def output_shape(self, input_shapes: Iterable[tuple[int, ...]]) -> tuple[int, ...]:  # type: ignore[override]
        shapes = list(input_shapes)
        first = list(shapes[0])
        axis = self.axis % len(first)
        first[axis] = sum(s[axis] for s in shapes)
        return tuple(first)
