"""The bandwidth-constrained uplink.

The paper's target deployments allocate "a few hundred kilobits per second,
or less" of uplink bandwidth per camera.  :class:`ConstrainedUplink` models
such a link: every upload is throttled to the link capacity, transfers are
serialized, and utilization over the stream duration is tracked so
experiments can check whether a filtering strategy stays within budget.

:class:`SharedUplink` extends the model to a *cluster*: several edge nodes
share one datacenter link, and each node receives a static allocation (a
slice of the total capacity) as its own :class:`ConstrainedUplink`.  Static
slicing keeps every node's simulation independent and deterministic while
the shared object accounts for aggregate utilization and backlog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["UplinkTransfer", "ConstrainedUplink", "SharedUplink"]


@dataclass(frozen=True)
class UplinkTransfer:
    """One completed upload through the constrained link."""

    description: str
    bits: float
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        """Transfer duration in seconds (throttled by the link capacity)."""
        return self.end_time - self.start_time


@dataclass
class ConstrainedUplink:
    """A serial uplink with a fixed capacity in bits per second."""

    capacity_bps: float
    transfers: list[UplinkTransfer] = field(default_factory=list)
    _busy_until: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")

    def upload(self, bits: float, available_at: float = 0.0, description: str = "upload") -> UplinkTransfer:
        """Send ``bits`` as soon as the link is free at or after ``available_at``.

        Returns the completed transfer record; the link is then busy until
        the transfer's end time.
        """
        if bits < 0:
            raise ValueError("bits must be non-negative")
        start = max(float(available_at), self._busy_until)
        duration = bits / self.capacity_bps
        transfer = UplinkTransfer(
            description=description, bits=float(bits), start_time=start, end_time=start + duration
        )
        self.transfers.append(transfer)
        self._busy_until = transfer.end_time
        return transfer

    @property
    def total_bits(self) -> float:
        """Total bits sent over the link."""
        return float(sum(t.bits for t in self.transfers))

    @property
    def busy_until(self) -> float:
        """Time at which the link becomes idle."""
        return self._busy_until

    def utilization(self, duration: float) -> float:
        """Fraction of the link capacity consumed over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.total_bits / (self.capacity_bps * duration)

    def backlog_seconds(self, now: float) -> float:
        """How far behind real time the link currently is."""
        return max(0.0, self._busy_until - float(now))

    def reset(self) -> None:
        """Forget all past transfers."""
        self.transfers.clear()
        self._busy_until = 0.0


class SharedUplink:
    """One datacenter link statically sliced among several edge nodes.

    Each node calls :meth:`allocate` (or the constructor does, via
    ``weights``) and receives a private :class:`ConstrainedUplink` whose
    capacity is its share of the total.  Allocations may not oversubscribe
    the link.  Aggregate accounting (:attr:`total_bits`,
    :meth:`utilization`, :meth:`backlog_seconds`) sums over every slice.
    """

    def __init__(
        self,
        capacity_bps: float,
        weights: Mapping[str, float] | Sequence[str] | None = None,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        self.capacity_bps = float(capacity_bps)
        self._links: dict[str, ConstrainedUplink] = {}
        self._allocated_bps = 0.0
        if weights is not None:
            if not isinstance(weights, Mapping):
                weights = {name: 1.0 for name in weights}
            total = sum(weights.values())
            if total <= 0:
                raise ValueError("allocation weights must sum to a positive value")
            for name, weight in weights.items():
                self.allocate(name, self.capacity_bps * weight / total)

    def allocate(self, name: str, bps: float) -> ConstrainedUplink:
        """Carve ``bps`` of the link off for node ``name``."""
        if name in self._links:
            raise ValueError(f"Node {name!r} already holds an uplink allocation")
        if bps <= 0:
            raise ValueError("allocation must be positive")
        if self._allocated_bps + bps > self.capacity_bps * (1 + 1e-9):
            raise ValueError(
                f"Allocating {bps:g} bps for {name!r} oversubscribes the link "
                f"({self._allocated_bps:g} of {self.capacity_bps:g} bps already allocated)"
            )
        link = ConstrainedUplink(bps)
        self._links[name] = link
        self._allocated_bps += bps
        return link

    @property
    def links(self) -> dict[str, ConstrainedUplink]:
        """Per-node allocations by name (insertion order preserved)."""
        return dict(self._links)

    @property
    def allocated_bps(self) -> float:
        """Capacity handed out so far."""
        return self._allocated_bps

    @property
    def total_bits(self) -> float:
        """Bits sent across all allocations."""
        return sum(link.total_bits for link in self._links.values())

    def utilization(self, duration: float) -> float:
        """Fraction of the *whole* link consumed over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.total_bits / (self.capacity_bps * duration)

    def backlog_seconds(self, now: float) -> float:
        """Worst per-node backlog: how far the most-behind slice lags ``now``."""
        if not self._links:
            return 0.0
        return max(link.backlog_seconds(now) for link in self._links.values())
