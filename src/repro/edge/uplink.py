"""The bandwidth-constrained uplink.

The paper's target deployments allocate "a few hundred kilobits per second,
or less" of uplink bandwidth per camera.  :class:`ConstrainedUplink` models
such a link: every upload is throttled to the link capacity, transfers are
serialized, and utilization over the stream duration is tracked so
experiments can check whether a filtering strategy stays within budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["UplinkTransfer", "ConstrainedUplink"]


@dataclass(frozen=True)
class UplinkTransfer:
    """One completed upload through the constrained link."""

    description: str
    bits: float
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        """Transfer duration in seconds (throttled by the link capacity)."""
        return self.end_time - self.start_time


@dataclass
class ConstrainedUplink:
    """A serial uplink with a fixed capacity in bits per second."""

    capacity_bps: float
    transfers: list[UplinkTransfer] = field(default_factory=list)
    _busy_until: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")

    def upload(self, bits: float, available_at: float = 0.0, description: str = "upload") -> UplinkTransfer:
        """Send ``bits`` as soon as the link is free at or after ``available_at``.

        Returns the completed transfer record; the link is then busy until
        the transfer's end time.
        """
        if bits < 0:
            raise ValueError("bits must be non-negative")
        start = max(float(available_at), self._busy_until)
        duration = bits / self.capacity_bps
        transfer = UplinkTransfer(
            description=description, bits=float(bits), start_time=start, end_time=start + duration
        )
        self.transfers.append(transfer)
        self._busy_until = transfer.end_time
        return transfer

    @property
    def total_bits(self) -> float:
        """Total bits sent over the link."""
        return float(sum(t.bits for t in self.transfers))

    @property
    def busy_until(self) -> float:
        """Time at which the link becomes idle."""
        return self._busy_until

    def utilization(self, duration: float) -> float:
        """Fraction of the link capacity consumed over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.total_bits / (self.capacity_bps * duration)

    def backlog_seconds(self, now: float) -> float:
        """How far behind real time the link currently is."""
        return max(0.0, self._busy_until - float(now))

    def reset(self) -> None:
        """Forget all past transfers."""
        self.transfers.clear()
        self._busy_until = 0.0
