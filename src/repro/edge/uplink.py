"""The bandwidth-constrained uplink.

The paper's target deployments allocate "a few hundred kilobits per second,
or less" of uplink bandwidth per camera.  :class:`ConstrainedUplink` models
such a link: every upload is throttled to the link capacity, transfers are
serialized, and utilization over the stream duration is tracked so
experiments can check whether a filtering strategy stays within budget.

:class:`SharedUplink` extends the model to a *cluster*: several edge nodes
share one datacenter link, and each node receives a static allocation (a
slice of the total capacity) as its own :class:`ConstrainedUplink`.  Static
slicing keeps every node's simulation independent and deterministic while
the shared object accounts for aggregate utilization and backlog.

:class:`WorkConservingUplink` replaces the static slices with weighted
generalized processor sharing (GPS): every backlogged node drains at
``capacity * weight / sum(weights of backlogged nodes)``, so capacity a node
is not using flows to the nodes that need it.  Bits a node moves *above* its
static guarantee (``capacity * weight / sum(all weights)``) are tracked as
:attr:`~WorkConservingUplink.reclaimed_bits` — the quantity that would have
sat idle under static slicing.  The model is a deterministic fluid
simulation over a globally time-ordered list of transfer requests from all
nodes, which is exactly the cross-node event ordering static slicing let the
cluster avoid.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = [
    "UplinkTransfer",
    "ConstrainedUplink",
    "SharedUplink",
    "SharedTransferRequest",
    "SharedTransfer",
    "WorkConservingUplink",
]


@dataclass(frozen=True)
class UplinkTransfer:
    """One completed upload through the constrained link."""

    description: str
    bits: float
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        """Transfer duration in seconds (throttled by the link capacity)."""
        return self.end_time - self.start_time


@dataclass
class ConstrainedUplink:
    """A serial uplink with a fixed capacity in bits per second.

    ``keep_transfers=False`` drops the per-transfer history while keeping
    every aggregate (total bits, busy-until, utilization, backlog) exact —
    for callers replaying millions of transfers (e.g. the event-delivery
    benchmark) where the history would dominate memory.
    """

    capacity_bps: float
    transfers: list[UplinkTransfer] = field(default_factory=list)
    keep_transfers: bool = True
    _busy_until: float = 0.0
    _total_bits: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")

    def upload(self, bits: float, available_at: float = 0.0, description: str = "upload") -> UplinkTransfer:
        """Send ``bits`` as soon as the link is free at or after ``available_at``.

        Returns the completed transfer record; the link is then busy until
        the transfer's end time.
        """
        if bits < 0:
            raise ValueError("bits must be non-negative")
        start = max(float(available_at), self._busy_until)
        duration = bits / self.capacity_bps
        transfer = UplinkTransfer(
            description=description, bits=float(bits), start_time=start, end_time=start + duration
        )
        if self.keep_transfers:
            self.transfers.append(transfer)
        self._busy_until = transfer.end_time
        self._total_bits += transfer.bits
        return transfer

    @property
    def total_bits(self) -> float:
        """Total bits sent over the link."""
        return self._total_bits

    @property
    def busy_until(self) -> float:
        """Time at which the link becomes idle."""
        return self._busy_until

    def utilization(self, duration: float) -> float:
        """Fraction of the link capacity consumed over ``duration`` seconds.

        An empty window (``duration <= 0`` — e.g. a zero-length run being
        finalized) used nothing of the link, so it reports 0.0 rather than
        raising and crashing report finalization.
        """
        if duration <= 0:
            return 0.0
        return self.total_bits / (self.capacity_bps * duration)

    def backlog_seconds(self, now: float) -> float:
        """How far behind real time the link currently is."""
        return max(0.0, self._busy_until - float(now))

    def reset(self) -> None:
        """Forget all past transfers."""
        self.transfers.clear()
        self._busy_until = 0.0
        self._total_bits = 0.0


class SharedUplink:
    """One datacenter link statically sliced among several edge nodes.

    Each node calls :meth:`allocate` (or the constructor does, via
    ``weights``) and receives a private :class:`ConstrainedUplink` whose
    capacity is its share of the total.  Allocations may not oversubscribe
    the link.  Aggregate accounting (:attr:`total_bits`,
    :meth:`utilization`, :meth:`backlog_seconds`) sums over every slice.
    """

    def __init__(
        self,
        capacity_bps: float,
        weights: Mapping[str, float] | Sequence[str] | None = None,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        self.capacity_bps = float(capacity_bps)
        self._links: dict[str, ConstrainedUplink] = {}
        self._allocated_bps = 0.0
        if weights is not None:
            if not isinstance(weights, Mapping):
                weights = {name: 1.0 for name in weights}
            total = sum(weights.values())
            if total <= 0:
                raise ValueError("allocation weights must sum to a positive value")
            for name, weight in weights.items():
                self.allocate(name, self.capacity_bps * weight / total)

    def allocate(self, name: str, bps: float) -> ConstrainedUplink:
        """Carve ``bps`` of the link off for node ``name``."""
        if name in self._links:
            raise ValueError(f"Node {name!r} already holds an uplink allocation")
        if bps <= 0:
            raise ValueError("allocation must be positive")
        if self._allocated_bps + bps > self.capacity_bps * (1 + 1e-9):
            raise ValueError(
                f"Allocating {bps:g} bps for {name!r} oversubscribes the link "
                f"({self._allocated_bps:g} of {self.capacity_bps:g} bps already allocated)"
            )
        link = ConstrainedUplink(bps)
        self._links[name] = link
        self._allocated_bps += bps
        return link

    @property
    def links(self) -> dict[str, ConstrainedUplink]:
        """Per-node allocations by name (insertion order preserved)."""
        return dict(self._links)

    @property
    def allocated_bps(self) -> float:
        """Capacity handed out so far."""
        return self._allocated_bps

    @property
    def total_bits(self) -> float:
        """Bits sent across all allocations."""
        return sum(link.total_bits for link in self._links.values())

    def utilization(self, duration: float) -> float:
        """Fraction of the *whole* link consumed over ``duration`` seconds.

        0.0 for an empty window, matching :meth:`ConstrainedUplink.utilization`.
        """
        if duration <= 0:
            return 0.0
        return self.total_bits / (self.capacity_bps * duration)

    def backlog_seconds(self, now: float) -> float:
        """Worst per-node backlog: how far the most-behind slice lags ``now``."""
        if not self._links:
            return 0.0
        return max(link.backlog_seconds(now) for link in self._links.values())


@dataclass(frozen=True)
class SharedTransferRequest:
    """One node's request to move ``bits`` through the shared link."""

    node_id: str
    bits: float
    available_at: float
    description: str = "upload"

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ValueError("bits must be non-negative")
        if self.available_at < 0:
            raise ValueError("available_at must be non-negative")


@dataclass(frozen=True)
class SharedTransfer:
    """One completed transfer through the work-conserving shared link."""

    node_id: str
    description: str
    bits: float
    available_at: float
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        """Wall time from first to last bit on the wire."""
        return self.end_time - self.start_time


class WorkConservingUplink:
    """One datacenter link shared by weighted generalized processor sharing.

    Every node holds a *weight*; at any instant the backlogged nodes split
    the link capacity in proportion to their weights, so a node whose
    neighbours are idle drains at up to the full link rate.  Each node's
    static guarantee is ``capacity * weight / sum(all weights)`` — what a
    :class:`SharedUplink` slice would have given it — and every bit moved
    above that rate counts toward :attr:`reclaimed_bits`.

    The simulation is *post-hoc*: callers collect every node's transfer
    requests (globally time-ordered across the cluster), optionally schedule
    weight updates via :meth:`schedule_weights` (the control plane's uplink
    actuator), and call :meth:`drain` once.  The fluid GPS replay is exact
    and deterministic: sorted inputs, no randomness, no wall-clock reads.
    """

    _EPS_BITS = 1e-9

    def __init__(self, capacity_bps: float, weights: Mapping[str, float]) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        if not weights:
            raise ValueError("WorkConservingUplink needs at least one node weight")
        for node_id, weight in weights.items():
            if weight <= 0:
                raise ValueError(f"weight for node {node_id!r} must be positive")
        self.capacity_bps = float(capacity_bps)
        self._weights = {node_id: float(w) for node_id, w in weights.items()}
        self._weight_changes: list[tuple[float, int, dict[str, float]]] = []
        self._change_sequence = 0
        self.transfers: list[SharedTransfer] = []
        self.reclaimed_bits = 0.0
        self._node_bits = {node_id: 0.0 for node_id in self._weights}
        self._node_reclaimed = {node_id: 0.0 for node_id in self._weights}
        self._node_busy_until = {node_id: 0.0 for node_id in self._weights}
        self._drained = False
        # Optional callback invoked with each SharedTransfer the moment the
        # fluid replay completes it (in completion order).  The sharded
        # runtime's frame tracer uses it to stamp upload spans onto sampled
        # frames without re-walking the transfer list.
        self.on_transfer = None

    # -- configuration -------------------------------------------------------
    @property
    def node_ids(self) -> list[str]:
        """Participating nodes (insertion order preserved)."""
        return list(self._weights)

    @property
    def weights(self) -> dict[str, float]:
        """Initial per-node weights."""
        return dict(self._weights)

    def guaranteed_bps(self, node_id: str) -> float:
        """A node's static-slice guarantee under the *initial* weights."""
        return self.capacity_bps * self._weights[node_id] / sum(self._weights.values())

    def schedule_weights(self, at_time: float, weights: Mapping[str, float]) -> None:
        """Install new GPS weights from ``at_time`` onward (applied in replay).

        The node set must not change; weights must be positive.  Multiple
        updates at the same instant apply in scheduling order (last wins).
        """
        if self._drained:
            raise RuntimeError("cannot schedule weights after drain()")
        if at_time < 0:
            raise ValueError("at_time must be non-negative")
        if set(weights) != set(self._weights):
            raise ValueError(
                f"weight update must cover exactly {sorted(self._weights)}, "
                f"got {sorted(weights)}"
            )
        for node_id, weight in weights.items():
            if weight <= 0:
                raise ValueError(f"weight for node {node_id!r} must be positive")
        self._weight_changes.append(
            (float(at_time), self._change_sequence, {n: float(w) for n, w in weights.items()})
        )
        self._change_sequence += 1

    # -- the fluid replay ----------------------------------------------------
    def drain(self, requests: Iterable[SharedTransferRequest]) -> list[SharedTransfer]:
        """Replay every request through the shared link; returns the transfers.

        Requests are served FIFO per node and GPS-shared across nodes.  May
        only be called once.
        """
        if self._drained:
            raise RuntimeError("drain() may only be called once")
        self._drained = True
        reqs = sorted(
            requests, key=lambda r: (r.available_at, r.node_id, r.description, r.bits)
        )
        for req in reqs:
            if req.node_id not in self._weights:
                raise ValueError(f"Unknown node {req.node_id!r} in transfer request")
        changes = sorted(self._weight_changes, key=lambda c: (c[0], c[1]))
        queues: dict[str, deque[SharedTransferRequest]] = {
            node_id: deque() for node_id in self._weights
        }
        remaining: dict[str, float] = {}
        started: dict[str, float] = {}
        weights = dict(self._weights)
        # The reclaim baseline is what *static slicing under the configured
        # allocation* would have guaranteed — the initial weights.  Scheduled
        # re-weighting changes the GPS rates, not the comparison point.
        initial_total = sum(self._weights.values())
        capacity = self.capacity_bps
        results: list[SharedTransfer] = []
        i = 0  # next request to enqueue
        ci = 0  # next weight change to apply
        t = 0.0
        while True:
            while i < len(reqs) and reqs[i].available_at <= t:
                queues[reqs[i].node_id].append(reqs[i])
                i += 1
            while ci < len(changes) and changes[ci][0] <= t:
                weights = dict(changes[ci][2])
                ci += 1
            for node_id in sorted(queues):
                if queues[node_id] and node_id not in remaining:
                    head = queues[node_id][0]
                    remaining[node_id] = head.bits
                    started[node_id] = max(t, head.available_at)
            completed = False
            for node_id in sorted(remaining):
                if remaining[node_id] <= self._EPS_BITS:
                    head = queues[node_id].popleft()
                    transfer = SharedTransfer(
                        node_id=node_id,
                        description=head.description,
                        bits=head.bits,
                        available_at=head.available_at,
                        start_time=started[node_id],
                        end_time=t,
                    )
                    results.append(transfer)
                    if self.on_transfer is not None:
                        self.on_transfer(transfer)
                    self._node_bits[node_id] += head.bits
                    self._node_busy_until[node_id] = t
                    del remaining[node_id]
                    del started[node_id]
                    completed = True
            if completed:
                continue  # promote the next heads at the same instant
            active = sorted(remaining)
            if not active:
                if i < len(reqs):
                    t = max(t, reqs[i].available_at)
                    continue
                break
            active_weight = sum(weights[n] for n in active)
            t_arrival = reqs[i].available_at if i < len(reqs) else math.inf
            t_change = changes[ci][0] if ci < len(changes) else math.inf
            t_complete = min(
                t + remaining[n] * active_weight / (capacity * weights[n]) for n in active
            )
            t_next = min(t_arrival, t_change, t_complete)
            if t_next <= t:
                # Floating-point liveness guard: the shortest residual
                # drains in less than one ulp of the clock (t + dt == t),
                # so time cannot advance.  Finish every residual whose
                # completion rounds to "now" and re-run the sweep.
                for n in active:
                    if t + remaining[n] * active_weight / (capacity * weights[n]) <= t:
                        remaining[n] = 0.0
                continue
            dt = t_next - t
            for n in active:
                rate = capacity * weights[n] / active_weight
                drained = min(remaining[n], rate * dt)
                remaining[n] -= drained
                guaranteed = capacity * self._weights[n] / initial_total
                if rate > guaranteed and dt > 0:
                    excess = min(drained, (rate - guaranteed) * dt)
                    self._node_reclaimed[n] += excess
                    self.reclaimed_bits += excess
            t = t_next
        self.transfers = results
        return results

    # -- accounting ----------------------------------------------------------
    @property
    def total_bits(self) -> float:
        """Bits moved across all nodes."""
        return sum(self._node_bits.values())

    def node_bits(self, node_id: str) -> float:
        """Bits node ``node_id`` moved through the link."""
        return self._node_bits[node_id]

    def node_reclaimed_bits(self, node_id: str) -> float:
        """Bits ``node_id`` moved above its static guarantee."""
        return self._node_reclaimed[node_id]

    def node_transfers(self, node_id: str) -> list[SharedTransfer]:
        """Completed transfers of one node, in completion order."""
        return [tr for tr in self.transfers if tr.node_id == node_id]

    def utilization(self, duration: float) -> float:
        """Fraction of the whole link consumed over ``duration`` seconds.

        0.0 for an empty window, matching :meth:`ConstrainedUplink.utilization`.
        """
        if duration <= 0:
            return 0.0
        return self.total_bits / (self.capacity_bps * duration)

    def backlog_seconds(self, now: float) -> float:
        """How far the most-behind node's last bit lags ``now``."""
        if not self._node_busy_until:
            return 0.0
        return max(0.0, max(self._node_busy_until.values()) - float(now))

    def node_backlog_seconds(self, node_id: str, now: float) -> float:
        """How far one node's last bit lags ``now``."""
        return max(0.0, self._node_busy_until[node_id] - float(now))
