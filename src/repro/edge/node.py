"""The edge node: pipeline + archive + constrained uplink.

:class:`EdgeNode` ties the FilterForward pipeline to the deployment
substrate: every frame of the camera stream is archived locally, matched
event frames are pushed through the bandwidth-constrained uplink, and
datacenter applications can demand-fetch context segments (which also
consume uplink bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import FilterForwardPipeline, PipelineResult
from repro.edge.archive import ArchivedSegment, FrameArchive
from repro.edge.uplink import ConstrainedUplink
from repro.video.stream import VideoStream

__all__ = ["EdgeNodeReport", "EdgeNode"]


@dataclass
class EdgeNodeReport:
    """What one stream's worth of edge processing produced."""

    pipeline_result: PipelineResult
    archived_frames: int
    uplink_utilization: float
    uplink_backlog_seconds: float
    demand_fetches: list[ArchivedSegment] = field(default_factory=list)

    @property
    def within_bandwidth_budget(self) -> bool:
        """Whether event uploads fit within the uplink capacity in real time."""
        return self.uplink_backlog_seconds <= 0.0


class EdgeNode:
    """A camera-collocated edge node running FilterForward.

    Parameters
    ----------
    pipeline:
        The filtering pipeline (feature extractor + microclassifiers).
    uplink:
        The constrained wide-area uplink.
    archive:
        Local frame archive (defaults to a 4 GiB budget).
    """

    def __init__(
        self,
        pipeline: FilterForwardPipeline,
        uplink: ConstrainedUplink,
        archive: FrameArchive | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.uplink = uplink
        self.archive = archive or FrameArchive()

    def process_stream(self, stream: VideoStream) -> EdgeNodeReport:
        """Archive, filter, and upload one camera stream.

        The stream is decoded exactly once: each frame is archived and fed to
        the incremental pipeline in the same pass.
        """
        session = self.pipeline.streaming_session(stream.frame_rate, stream.resolution)
        for frame in stream:
            self.archive.store(frame)
            session.push(frame)
        result = session.finish(stream_duration=stream.duration)
        # Upload each MC's encoded event frames; uploads become available as
        # the corresponding events end.
        for mc_result in result.per_mc.values():
            if mc_result.encoded is None:
                continue
            for event in mc_result.events:
                event_bits = self._event_bits(mc_result, event.start, event.end)
                available_at = event.end / stream.frame_rate
                self.uplink.upload(
                    event_bits,
                    available_at=available_at,
                    description=f"{mc_result.mc_name}/event{event.event_id}",
                )
        utilization = self.uplink.utilization(stream.duration)
        backlog = self.uplink.backlog_seconds(stream.duration)
        return EdgeNodeReport(
            pipeline_result=result,
            archived_frames=len(self.archive),
            uplink_utilization=utilization,
            uplink_backlog_seconds=backlog,
        )

    @staticmethod
    def _event_bits(mc_result, start: int, end: int) -> float:
        """Bits consumed by the encoded frames of one event."""
        return float(
            sum(cf.bits for cf in mc_result.encoded.frames if start <= cf.index < end)
        )

    def demand_fetch(self, start: int, end: int, report: EdgeNodeReport | None = None) -> ArchivedSegment:
        """Serve a datacenter demand-fetch for frames ``[start, end)``.

        The fetched frames' raw bits are charged against the uplink; if a
        ``report`` is given the fetch is recorded there.
        """
        segment = self.archive.demand_fetch(start, end)
        bits = float(sum(f.pixels.nbytes * 8 for f in segment.frames))
        self.uplink.upload(bits, description=f"demand_fetch[{start}:{end}]")
        if report is not None:
            report.demand_fetches.append(segment)
        return segment
