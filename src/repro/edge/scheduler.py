"""Phased execution scheduling.

"To reduce CPU contention, we use end-to-end flow control to guarantee that,
for FilterForward, the base DNN and MCs are executed in phases (not
pipelined) so that Caffe and TensorFlow do not compete for cores."
(paper Section 4.4).  :func:`build_phased_schedule` produces that per-frame
phase timeline — decode, base DNN, then each microclassifier batch — from an
:class:`~repro.perf.throughput_model.ExecutionBreakdown`, so experiments and
examples can inspect where the time goes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.throughput_model import ExecutionBreakdown

__all__ = ["Phase", "PhasedSchedule", "build_phased_schedule"]


@dataclass(frozen=True)
class Phase:
    """One sequential phase of per-frame processing."""

    name: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """Phase end time (seconds from the start of the frame)."""
        return self.start + self.duration


@dataclass(frozen=True)
class PhasedSchedule:
    """A per-frame phase timeline (no two phases overlap)."""

    phases: tuple[Phase, ...]

    @property
    def total_seconds(self) -> float:
        """Total per-frame processing time."""
        return self.phases[-1].end if self.phases else 0.0

    @property
    def fps(self) -> float:
        """Sustainable frame rate when frames are processed back-to-back."""
        total = self.total_seconds
        return 1.0 / total if total > 0 else float("inf")

    def phase(self, name: str) -> Phase:
        """Look up a phase by name."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"No phase named {name!r}")

    def fraction(self, name: str) -> float:
        """Fraction of total frame time spent in ``name``."""
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return self.phase(name).duration / total


def build_phased_schedule(
    breakdown: ExecutionBreakdown, classifier_batches: int = 1
) -> PhasedSchedule:
    """Build the phased per-frame schedule from an execution breakdown.

    Parameters
    ----------
    breakdown:
        Per-frame time split from the throughput model.
    classifier_batches:
        How many sequential batches the microclassifiers are split into
        (they never overlap the base DNN either way).
    """
    if classifier_batches < 1:
        raise ValueError("classifier_batches must be positive")
    phases: list[Phase] = []
    cursor = 0.0

    def push(name: str, duration: float) -> None:
        nonlocal cursor
        phases.append(Phase(name=name, start=cursor, duration=float(duration)))
        cursor += duration

    push("decode_and_io", breakdown.overhead_seconds)
    push("base_dnn", breakdown.base_dnn_seconds)
    per_batch = breakdown.classifiers_seconds / classifier_batches
    for i in range(classifier_batches):
        push(f"microclassifiers_batch_{i}", per_batch)
    return PhasedSchedule(phases=tuple(phases))
