"""The edge node's local video archive.

"In the background, edge nodes record the original video stream to disk so
that datacenter applications can demand-fetch additional video (e.g.,
context segments surrounding a matched segment) from the edge nodes' local
storage." (paper Section 3.2).  :class:`FrameArchive` models that archive:
frames are retained up to a storage budget (oldest evicted first) and can be
fetched back by index range.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.video.frame import Frame

__all__ = ["ArchivedSegment", "FrameArchive"]


@dataclass(frozen=True)
class ArchivedSegment:
    """The result of a demand-fetch from the archive."""

    start: int
    end: int
    frames: tuple[Frame, ...]

    @property
    def missing(self) -> int:
        """Number of requested frames that had already been evicted."""
        return (self.end - self.start) - len(self.frames)


class FrameArchive:
    """A bounded archive of decoded frames, evicting oldest-first.

    Parameters
    ----------
    capacity_bytes:
        Storage budget.  Each archived frame is charged its raw pixel size;
        a real deployment would store H.264, so this is a conservative bound.
    """

    def __init__(self, capacity_bytes: float = 4 * 1024**3) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self._frames: "OrderedDict[int, Frame]" = OrderedDict()
        self._bytes_used = 0.0

    @staticmethod
    def _frame_bytes(frame: Frame) -> float:
        return float(frame.pixels.nbytes)

    def store(self, frame: Frame) -> None:
        """Archive one frame, evicting the oldest frames if over budget."""
        size = self._frame_bytes(frame)
        if size > self.capacity_bytes:
            raise ValueError("A single frame exceeds the archive capacity")
        if frame.index in self._frames:
            self._bytes_used -= self._frame_bytes(self._frames.pop(frame.index))
        self._frames[frame.index] = frame
        self._bytes_used += size
        while self._bytes_used > self.capacity_bytes and self._frames:
            _, evicted = self._frames.popitem(last=False)
            self._bytes_used -= self._frame_bytes(evicted)

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, index: int) -> bool:
        return index in self._frames

    @property
    def bytes_used(self) -> float:
        """Current storage consumption in bytes."""
        return self._bytes_used

    @property
    def oldest_index(self) -> int | None:
        """Index of the oldest retained frame (None if empty)."""
        return next(iter(self._frames), None)

    def demand_fetch(self, start: int, end: int) -> ArchivedSegment:
        """Fetch the archived frames with indices in ``[start, end)``.

        Frames that have been evicted are simply absent from the result;
        callers can check :attr:`ArchivedSegment.missing`.
        """
        if end <= start:
            raise ValueError("end must be greater than start")
        frames = tuple(self._frames[i] for i in range(start, end) if i in self._frames)
        return ArchivedSegment(start=int(start), end=int(end), frames=frames)

    def fetch_event_context(self, event_start: int, event_end: int, context: int) -> ArchivedSegment:
        """Fetch an event's frames plus ``context`` frames on each side."""
        if context < 0:
            raise ValueError("context must be non-negative")
        return self.demand_fetch(max(0, event_start - context), event_end + context)
