"""Edge-node runtime: constrained uplink, local archive, and phased scheduling.

FilterForward runs on an edge node collocated with the cameras.  Besides the
filtering pipeline itself, the deployment described in the paper needs:

* a bandwidth-constrained uplink shared by the node's uploads
  (Section 2.2.1: a few hundred kilobits per second per camera);
* a local disk archive of the original stream, from which datacenter
  applications can demand-fetch additional context around matched events
  (Section 3.2);
* phased execution of the base DNN and the microclassifiers so the two
  inference stacks do not contend for CPU cores (Section 4.4).
"""

from repro.edge.archive import ArchivedSegment, FrameArchive
from repro.edge.node import EdgeNode, EdgeNodeReport
from repro.edge.scheduler import Phase, PhasedSchedule, build_phased_schedule
from repro.edge.uplink import (
    ConstrainedUplink,
    SharedTransfer,
    SharedTransferRequest,
    SharedUplink,
    UplinkTransfer,
    WorkConservingUplink,
)

__all__ = [
    "ArchivedSegment",
    "ConstrainedUplink",
    "EdgeNode",
    "EdgeNodeReport",
    "FrameArchive",
    "Phase",
    "PhasedSchedule",
    "SharedTransfer",
    "SharedTransferRequest",
    "SharedUplink",
    "UplinkTransfer",
    "WorkConservingUplink",
    "build_phased_schedule",
]
