"""repro — a from-scratch reproduction of FilterForward.

FilterForward ("Scaling Video Analytics on Constrained Edge Nodes",
Canel et al., SysML/MLSys 2019) is an edge-to-cloud video filtering system:
a shared base DNN runs once per full-resolution frame, many lightweight
per-application microclassifiers consume its feature maps, per-frame
decisions are smoothed into events, and only event frames are re-encoded and
uploaded over a bandwidth-constrained uplink.

Top-level convenience imports cover the most common entry points; see the
subpackages for the full API:

* :mod:`repro.nn` — NumPy deep-learning framework,
* :mod:`repro.video` — frames, streams, synthetic datasets, codec simulator,
* :mod:`repro.features` — MobileNet-style base DNN and feature extractor,
* :mod:`repro.core` — microclassifiers, smoothing, events, the pipeline,
* :mod:`repro.baselines` — discrete classifiers, full DNNs, compress-everything,
* :mod:`repro.metrics` — event F1, bandwidth, throughput,
* :mod:`repro.perf` — cost, throughput, and memory models,
* :mod:`repro.edge` — uplink, archive, edge node, phased scheduling,
* :mod:`repro.experiments` — one module per paper table/figure,
* :mod:`repro.obs` — frame-lifecycle tracing, metrics timelines, SLOs.
"""

from repro.core import (
    FilterForwardPipeline,
    FullFrameObjectDetectorMC,
    LocalizedBinaryClassifierMC,
    MicroClassifierConfig,
    PipelineConfig,
    StreamingPipeline,
    WindowedLocalizedBinaryClassifierMC,
    build_microclassifier,
    train_classifier,
)
from repro.features import FeatureExtractor, FeatureMapCrop, build_mobilenet_like
from repro.fleet import FleetConfig, FleetReport, FleetRuntime, generate_fleet
from repro.metrics import event_f1_score
from repro.video import (
    H264Simulator,
    make_jackson_like,
    make_roadway_like,
)

__version__ = "1.3.0"

__all__ = [
    "FeatureExtractor",
    "FeatureMapCrop",
    "FilterForwardPipeline",
    "FleetConfig",
    "FleetReport",
    "FleetRuntime",
    "FullFrameObjectDetectorMC",
    "H264Simulator",
    "LocalizedBinaryClassifierMC",
    "MicroClassifierConfig",
    "PipelineConfig",
    "StreamingPipeline",
    "WindowedLocalizedBinaryClassifierMC",
    "__version__",
    "build_microclassifier",
    "build_mobilenet_like",
    "event_f1_score",
    "generate_fleet",
    "make_jackson_like",
    "make_roadway_like",
    "train_classifier",
]
