#!/usr/bin/env python3
"""Multi-tenant edge node: many applications sharing one camera and one base DNN.

This is the scenario that motivates FilterForward's design (paper Section
2.2.3): a single wide-angle camera serves many datacenter applications at
once — pedestrian monitoring, "people wearing red" retail analytics, and a
general vehicle watcher — each installing its own microclassifier on the
edge node.  The base DNN runs once per frame; every microclassifier reuses
its feature maps, so the marginal cost of each extra application is small.

The example also contrasts the deployment's compute and memory against the
naive alternative of running one full MobileNet per application, using the
paper-scale cost and memory models.

Run:  python examples/multi_tenant_edge_node.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    FilterForwardPipeline,
    MicroClassifierConfig,
    PipelineConfig,
    build_microclassifier,
)
from repro.edge import ConstrainedUplink, EdgeNode, FrameArchive, build_phased_schedule
from repro.features import FeatureExtractor, FeatureMapCrop, build_mobilenet_like
from repro.metrics import bits_to_mbps
from repro.perf import CostModel, MemoryModel, ThroughputModel
from repro.video import make_jackson_like

NUM_FRAMES = 240
WIDTH, HEIGHT = 128, 72
TAP_LAYER = "conv2_2/sep"
UPLINK_KBPS = 250  # the "few hundred kilobits per second" regime (scaled stream)


def build_applications(extractor: FeatureExtractor, crop: FeatureMapCrop) -> list:
    """Install one microclassifier per datacenter application."""
    layer_shape = extractor.layer_shape(TAP_LAYER)
    cropped_shape = extractor.cropped_layer_shape(TAP_LAYER, crop, (HEIGHT, WIDTH))
    rng = np.random.default_rng(0)
    applications = [
        (
            "crosswalk_pedestrians",
            "localized",
            MicroClassifierConfig(
                "crosswalk_pedestrians", TAP_LAYER, crop=crop, threshold=0.6, upload_bitrate=6_000
            ),
            cropped_shape,
        ),
        (
            "people_with_red",
            "windowed",
            MicroClassifierConfig(
                "people_with_red", TAP_LAYER, threshold=0.6, upload_bitrate=8_000
            ),
            layer_shape,
        ),
        (
            "vehicle_watcher",
            "full_frame",
            MicroClassifierConfig(
                "vehicle_watcher", TAP_LAYER, threshold=0.6, upload_bitrate=4_000
            ),
            layer_shape,
        ),
    ]
    return [
        build_microclassifier(architecture, config, shape, rng=rng)
        for _, architecture, config, shape in applications
    ]


def main() -> None:
    print("Generating a Jackson-like traffic-camera stream ...")
    dataset = make_jackson_like(num_frames=NUM_FRAMES, width=WIDTH, height=HEIGHT, seed=7)
    crop = FeatureMapCrop(*dataset.spec.crop)

    print("Building the shared feature extractor and three tenant microclassifiers ...")
    base_dnn = build_mobilenet_like((HEIGHT, WIDTH, 3), alpha=0.25, rng=np.random.default_rng(1))
    extractor = FeatureExtractor(base_dnn, [TAP_LAYER], cache_size=8)
    microclassifiers = build_applications(extractor, crop)

    pipeline = FilterForwardPipeline(extractor, microclassifiers, PipelineConfig())
    node = EdgeNode(
        pipeline,
        uplink=ConstrainedUplink(capacity_bps=UPLINK_KBPS * 1000),
        archive=FrameArchive(capacity_bytes=512 * 1024**2),
    )

    print(f"Filtering {NUM_FRAMES} frames for {len(microclassifiers)} concurrent applications ...")
    report = node.process_stream(dataset.test_stream)
    result = report.pipeline_result

    print("\nPer-application results (untrained demo weights — accuracy is not the point here):")
    for name, mc_result in result.per_mc.items():
        print(
            f"  {name:<24s} matched {mc_result.num_matched_frames:>4d} frames, "
            f"{len(mc_result.events)} events, "
            f"{bits_to_mbps(mc_result.average_bandwidth) * 1000:.1f} kb/s average upload"
        )
    print(
        f"\nUplink: {bits_to_mbps(result.average_uplink_bandwidth) * 1000:.1f} kb/s used of "
        f"{UPLINK_KBPS} kb/s capacity "
        f"(utilization {report.uplink_utilization:.1%}, "
        f"backlog {report.uplink_backlog_seconds:.1f}s)"
    )
    print(f"Archive holds {report.archived_frames} frames for demand-fetch.")

    print("\nCompute sharing (per-frame multiply-adds on this node):")
    for component, cost in pipeline.multiply_adds_per_frame().items():
        print(f"  {component:<24s} {cost / 1e6:>8.1f}M")

    print("\nPaper-scale comparison (1920x1080, full-width MobileNet):")
    cost_model = CostModel(resolution=(1920, 1080))
    memory_model = MemoryModel()
    throughput_model = ThroughputModel(cost_model=cost_model, memory_model=memory_model)
    n = len(microclassifiers)
    ff_fps = throughput_model.filterforward_fps(n, "localized")
    naive = memory_model.mobilenets_memory(n)
    ff_memory = memory_model.filterforward_memory(n)
    print(f"  FilterForward with {n} MCs:        {ff_fps:.1f} fps, {ff_memory.gigabytes_used:.1f} GiB")
    print(
        f"  one MobileNet per application:    "
        f"{throughput_model.multiple_mobilenets_fps(n):.1f} fps, {naive.gigabytes_used:.1f} GiB"
    )
    schedule = build_phased_schedule(throughput_model.filterforward_breakdown(n, "localized"))
    print("  phased per-frame schedule:")
    for phase in schedule.phases:
        print(f"    {phase.name:<28s} {phase.duration * 1000:7.1f} ms")


if __name__ == "__main__":
    main()
