#!/usr/bin/env python3
"""Observable fleet: tracing, metric timelines, and SLOs on a hotspot run.

The adaptive example (``adaptive_fleet.py``) shows the control plane acting;
this one shows how you *see* what any fleet run did, using the observability
plane (``repro.obs``) end to end on a 2-node cluster with a temporal hotspot:

* a :class:`~repro.obs.Tracer` samples frame lifecycles (1-in-N, keyed
  deterministically on camera id + frame index) into span trees —
  ingest -> queue -> per-phase service -> upload — exported as Chrome
  trace-event JSON you can drop into Perfetto or ``chrome://tracing``;
* a :class:`~repro.obs.MetricsTimeline` scrapes every node's telemetry
  registry at each control tick, exported as Prometheus text exposition
  and JSONL;
* per-camera freshness/latency SLOs (:class:`~repro.obs.SLOConfig`) with
  error budgets and burn-rate flags, merged cluster-wide into the report;
* a flamegraph-style service-time profile attributing each camera's
  service seconds to pipeline phases.

Everything is simulated-clock deterministic: rerunning writes bit-identical
trace and timeline files.

Run:  python examples/observable_fleet.py
Writes ``trace.json``, ``metrics.prom``, and ``metrics.jsonl`` to the
output directory.

Environment overrides (used by the CI smoke step):
    OBSERVABLE_FLEET_HOT       hot half-duty cameras   (default 8)
    OBSERVABLE_FLEET_FILL      steady fill cameras     (default 16)
    OBSERVABLE_FLEET_DURATION  seconds per camera      (default 3.0)
    OBSERVABLE_FLEET_OUT       output directory        (default ./obs_out)
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.control import AdaptiveSheddingController, ControlLoop, SheddingConfig
from repro.fleet import (
    CameraSpec,
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
)
from repro.obs import MetricsTimeline, SLOConfig, Tracer, profile_from_tracer

NUM_HOT = int(os.environ.get("OBSERVABLE_FLEET_HOT", "8"))
NUM_FILL = int(os.environ.get("OBSERVABLE_FLEET_FILL", "16"))
DURATION_SECONDS = float(os.environ.get("OBSERVABLE_FLEET_DURATION", "3.0"))
OUT_DIR = Path(os.environ.get("OBSERVABLE_FLEET_OUT", "obs_out"))
NUM_NODES = 2
TOTAL_UPLINK_BPS = 400_000.0
SAMPLE_EVERY = 8

NODE_CONFIG = FleetConfig(
    num_workers=2,
    queue_capacity=4,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=10.0,
    slo=SLOConfig(
        freshness_target_seconds=0.5,
        latency_target_seconds=0.25,
        objective=0.9,
    ),
)


def make_fleet() -> list[CameraSpec]:
    """Hot half-duty cameras plus steady fill — a moving load hotspot."""
    half = DURATION_SECONDS / 2.0
    cameras: list[CameraSpec] = []
    for i in range(NUM_HOT):
        late = i % 2 == 1
        cameras.append(
            CameraSpec(
                camera_id=f"hot{i:02d}",
                width=64,
                height=48,
                frame_rate=24.0,
                num_frames=max(1, int(24.0 * half)),
                scenario="busy_intersection",
                seed=100 + i,
                start_time=half if late else 0.0,
            )
        )
    scenarios = ("quiet_residential", "urban_day", "retail_entrance", "night_watch")
    for i in range(NUM_FILL):
        rate = 4.0 if i % 2 == 0 else 2.0
        cameras.append(
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=80,
                height=48,
                frame_rate=rate,
                num_frames=max(1, int(rate * DURATION_SECONDS)),
                scenario=scenarios[i % 4],
                seed=i,
            )
        )
    return cameras


def main() -> None:
    fleet = make_fleet()
    tracer = Tracer(sample_every=SAMPLE_EVERY)
    timeline = MetricsTimeline()
    loop = ControlLoop(
        [
            AdaptiveSheddingController(
                SheddingConfig(
                    high_watermark_seconds=0.6,
                    low_watermark_seconds=0.2,
                    cameras_per_step=1,
                    quota_ladder=(2,),
                )
            )
        ],
        interval_seconds=0.25,
    )
    runtime = ShardedFleetRuntime(
        fleet,
        config=ShardingConfig(
            num_nodes=NUM_NODES,
            placement="load_aware",
            total_uplink_bps=TOTAL_UPLINK_BPS,
            uplink_allocation="equal",
            node_config=NODE_CONFIG,
        ),
        control_loop=loop,
        tracer=tracer,
        timeline=timeline,
    )
    print(
        f"observable fleet: {len(fleet)} cameras on {NUM_NODES} nodes, "
        f"1-in-{SAMPLE_EVERY} frame tracing, scraping every "
        f"{loop.interval_seconds:g}s"
    )
    report = runtime.run()
    print()
    print(report.summary())

    traces = tracer.frame_traces()
    print(
        f"\ntraced {len(traces)} frame lifecycles across "
        f"{len(tracer.node_ids)} nodes"
    )
    worst = max(traces, key=lambda t: t.end_to_end_seconds, default=None)
    if worst is not None:
        print(
            f"slowest sampled frame: {worst.camera_id}/frame{worst.frame_index} "
            f"took {worst.end_to_end_seconds * 1e3:.0f} ms ingest->done"
        )

    print("\nper-camera SLO status (worst burn first):")
    for camera in sorted(
        report.slo.cameras, key=lambda c: -c.burn_rate
    )[:5]:
        flag = "BURNING" if camera.burning else "ok"
        print(
            f"  {camera.camera_id:<8} fresh {camera.fresh_fraction:6.1%} | "
            f"budget {camera.error_budget_remaining:+7.1%} | "
            f"burn {camera.burn_rate:5.2f}x [{flag}]"
        )

    profile = profile_from_tracer(tracer)
    print("\nservice-second profile (sampled frames):")
    print(profile.format_table())

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    tracer.write_chrome_trace(OUT_DIR / "trace.json")
    timeline.write_prometheus(OUT_DIR / "metrics.prom")
    timeline.write_jsonl(OUT_DIR / "metrics.jsonl")
    print(
        f"\nwrote {OUT_DIR / 'trace.json'} (load in Perfetto), "
        f"{OUT_DIR / 'metrics.prom'}, {OUT_DIR / 'metrics.jsonl'} "
        f"({len(timeline)} samples from {', '.join(timeline.sources)})"
    )


if __name__ == "__main__":
    main()
