#!/usr/bin/env python3
"""Value-aware control: shed by event value, drift thresholds at runtime.

One overloaded node, every camera a real trained microclassifier, three
control regimes on the same cameras and models:

1. **static** — no control plane: the bounded queues shed whoever overflows;
2. **adaptive** — the PR-3 `AdaptiveSheddingController` (match-density
   ranking, drop-rate objective);
3. **value** — `ValueSheddingController` ranking by live ground-truth event
   value per service-second, composed with `ThresholdDriftController`
   nudging each camera's frozen calibrated threshold toward its live event
   rate (`SetCameraThreshold` actions, visible in the decision log).

The fleet mixes event-dense retail/intersection cameras with sparse
night/highway cameras, so *who* sheds decides the macro event F1.

Run:  python examples/value_aware_fleet.py
Environment overrides (used by the CI smoke step):
    VALUE_FLEET_DENSE         dense cameras      (default 6)
    VALUE_FLEET_SPARSE        sparse cameras     (default 6)
    VALUE_FLEET_DURATION      seconds/camera     (default 3.0)
    VALUE_FLEET_TRAIN_FRAMES  training frames    (default 64)
"""

from __future__ import annotations

import os

from repro.control import (
    AdaptiveSheddingController,
    ControlLoop,
    SheddingConfig,
    ThresholdDriftConfig,
    ThresholdDriftController,
    ValueSheddingConfig,
    ValueSheddingController,
)
from repro.fleet import (
    AccuracyConfig,
    CameraSpec,
    DropPolicy,
    FleetConfig,
    FleetRuntime,
    TrainedMicroClassifiers,
)

NUM_DENSE = int(os.environ.get("VALUE_FLEET_DENSE", "6"))
NUM_SPARSE = int(os.environ.get("VALUE_FLEET_SPARSE", "6"))
DURATION_SECONDS = float(os.environ.get("VALUE_FLEET_DURATION", "3.0"))
TRAIN_FRAMES = int(os.environ.get("VALUE_FLEET_TRAIN_FRAMES", "64"))

ACCURACY = AccuracyConfig(train_frames=TRAIN_FRAMES, epochs=2.0)

OVERLOADED = FleetConfig(
    num_workers=2,
    queue_capacity=2,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=0.12,
    accuracy_task=ACCURACY.task,
)

WATERMARKS = dict(
    high_watermark_seconds=0.15,
    low_watermark_seconds=0.05,
    cameras_per_step=2,
    quota_ladder=(2, 1),
)


def make_fleet() -> list[CameraSpec]:
    """Half event-dense, half event-sparse — value ranking has a choice."""
    cameras = []
    dense = ("retail_entrance", "busy_intersection")
    for i in range(NUM_DENSE):
        cameras.append(
            CameraSpec(
                camera_id=f"dense{i:02d}",
                width=48,
                height=32,
                frame_rate=10.0,
                num_frames=max(1, int(10.0 * DURATION_SECONDS)),
                scenario=dense[i % 2],
                seed=700 + i,
                event_rate_scale=2.0,
            )
        )
    sparse = ("night_watch", "highway_overpass")
    for i in range(NUM_SPARSE):
        cameras.append(
            CameraSpec(
                camera_id=f"sparse{i:02d}",
                width=48,
                height=32,
                frame_rate=10.0,
                num_frames=max(1, int(10.0 * DURATION_SECONDS)),
                scenario=sparse[i % 2],
                seed=100 + i,
                event_rate_scale=1.0,
            )
        )
    return cameras


def run_regime(models: TrainedMicroClassifiers, loop: ControlLoop | None):
    """One overloaded single-node run; returns (report, loop)."""
    runtime = FleetRuntime(
        make_fleet(), pipeline_factory=models.pipeline_factory(), config=OVERLOADED
    )
    if loop is None:
        return runtime.run(), None
    loop.run_node(runtime)
    return runtime.finalize(), loop


def main() -> None:
    models = TrainedMicroClassifiers(ACCURACY)
    fleet = make_fleet()
    print(
        f"training {len(fleet)} per-camera microclassifiers "
        f"({ACCURACY.train_frames} labelled frames each, task={ACCURACY.task}) ..."
    )

    static, _ = run_regime(models, None)
    print(f"\n--- static (queues shed blindly) ---\n{static.summary()}")

    adaptive, _ = run_regime(
        models,
        ControlLoop(
            [AdaptiveSheddingController(SheddingConfig(**WATERMARKS))],
            interval_seconds=0.25,
        ),
    )
    print(f"\n--- adaptive shedding (match-density ranking) ---\n{adaptive.summary()}")

    value, loop = run_regime(
        models,
        ControlLoop(
            [
                ValueSheddingController(
                    ValueSheddingConfig(value_signal="truth_density", **WATERMARKS)
                ),
                ThresholdDriftController(
                    ThresholdDriftConfig(min_scored=8, cooldown_ticks=2)
                ),
            ],
            interval_seconds=0.25,
        ),
    )
    print(f"\n--- value shedding + threshold drift ---\n{value.summary()}")
    drift_lines = [line for line in loop.decision_log if "set_camera_threshold" in line]
    print(f"\nthreshold drift actions ({len(drift_lines)}):")
    for line in drift_lines[:8]:
        print(f"  {line}")

    print(
        f"\nmacro-F1: static {static.accuracy.macro_f1:.3f} "
        f"(drop {static.drop_rate:.1%}) -> adaptive "
        f"{adaptive.accuracy.macro_f1:.3f} (drop {adaptive.drop_rate:.1%}) -> "
        f"value {value.accuracy.macro_f1:.3f} (drop {value.drop_rate:.1%}) | "
        f"trained once, reused {models.cache_hits}x"
    )


if __name__ == "__main__":
    main()
