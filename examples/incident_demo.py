#!/usr/bin/env python3
"""Incident demo: an alert fires, and the run explains itself.

A 2-node cluster hosts a temporal hotspot: high-rate ``busy_intersection``
cameras (dense events, heavy uploads) concentrated among steady fill
cameras.  The hotspot pushes queue waits over the shedding watermark and
drives the shared uplink hard, so in the same control windows:

* an :class:`~repro.obs.AlertRule` in rate mode fires on the monotonic
  ``uplink.estimated_bits`` counter of the hot node, and
* the adaptive shedding controller tightens per-camera quotas, recording a
  :class:`~repro.control.DecisionRecord` — inputs read, candidates ranked,
  watermark gates — for every tighten/relax/idle decision.

After the run the demo groups the fired alerts into incidents
(``repro.obs.incident``), joins them with the decision provenance records
and applied actions in the same window, prints the incident report, and
replays one capped camera's action back to the exact decision record that
produced it (the same walk ``tools/fleetctl.py explain`` does).

Everything is simulated-clock deterministic: two runs write bit-identical
``control_trace.jsonl``, ``alerts.jsonl``, ``timeline.jsonl``,
``incidents.json``, and ``incidents.md`` (the CI smoke step asserts this
with a byte compare).

Run:  python examples/incident_demo.py
Environment overrides (used by the CI smoke step):
    INCIDENT_DEMO_HOT       hot half-duty cameras   (default 8)
    INCIDENT_DEMO_FILL      steady fill cameras     (default 12)
    INCIDENT_DEMO_DURATION  seconds per camera      (default 3.0)
    INCIDENT_DEMO_OUT       output directory        (default ./incident_out)
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.control import (
    AdaptiveSheddingController,
    ControlLoop,
    SheddingConfig,
    control_trace_records,
    explain_action,
    trace_to_jsonl,
)
from repro.fleet import (
    CameraSpec,
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
)
from repro.obs import AlertRule, MetricsTimeline, incident_reports

NUM_HOT = int(os.environ.get("INCIDENT_DEMO_HOT", "8"))
NUM_FILL = int(os.environ.get("INCIDENT_DEMO_FILL", "12"))
DURATION_SECONDS = float(os.environ.get("INCIDENT_DEMO_DURATION", "3.0"))
OUT_DIR = Path(os.environ.get("INCIDENT_DEMO_OUT", "incident_out"))
NUM_NODES = 2
TOTAL_UPLINK_BPS = 400_000.0
UPLINK_ALERT_BPS = 10_000.0  # per-node upload demand worth paging about

NODE_CONFIG = FleetConfig(
    num_workers=2,
    queue_capacity=4,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=2.0,
)


def make_fleet() -> list[CameraSpec]:
    """Dense-event hot cameras plus steady fill — an upload hotspot."""
    half = DURATION_SECONDS / 2.0
    cameras: list[CameraSpec] = []
    for i in range(NUM_HOT):
        late = i % 2 == 1
        cameras.append(
            CameraSpec(
                camera_id=f"hot{i:02d}",
                width=64,
                height=48,
                frame_rate=24.0,
                num_frames=max(1, int(24.0 * half)),
                scenario="busy_intersection",
                seed=100 + i,
                start_time=half if late else 0.0,
            )
        )
    scenarios = ("quiet_residential", "urban_day", "retail_entrance", "night_watch")
    for i in range(NUM_FILL):
        rate = 4.0 if i % 2 == 0 else 2.0
        cameras.append(
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=80,
                height=48,
                frame_rate=rate,
                num_frames=max(1, int(rate * DURATION_SECONDS)),
                scenario=scenarios[i % 4],
                seed=i,
            )
        )
    return cameras


def main() -> None:
    fleet = make_fleet()
    timeline = MetricsTimeline()
    loop = ControlLoop(
        [
            AdaptiveSheddingController(
                SheddingConfig(
                    high_watermark_seconds=0.2,
                    low_watermark_seconds=0.05,
                    cameras_per_step=1,
                    quota_ladder=(2, 1),
                )
            )
        ],
        interval_seconds=0.25,
    )
    uplink_rule = AlertRule(
        name="uplink_demand",
        metric="uplink.estimated_bits",
        threshold=UPLINK_ALERT_BPS,
        mode="rate",  # per-second delta of the monotonic counter
        severity="page",
    )
    runtime = ShardedFleetRuntime(
        fleet,
        config=ShardingConfig(
            num_nodes=NUM_NODES,
            placement="load_aware",
            total_uplink_bps=TOTAL_UPLINK_BPS,
            uplink_allocation="equal",
            node_config=NODE_CONFIG,
        ),
        control_loop=loop,
        timeline=timeline,
        alert_rules=[uplink_rule],
    )
    print(
        f"incident demo: {len(fleet)} cameras on {NUM_NODES} nodes, "
        f"uplink rate alert at {UPLINK_ALERT_BPS / 1e3:g} kbit/s per node"
    )
    report = runtime.run()
    print()
    print(report.summary())

    horizon = timeline.samples[-1].time if len(timeline) else None
    reports = incident_reports(
        report.alerts,
        decision_records=report.decision_records,
        control_log=report.control_log,
        horizon=horizon,
        slack_seconds=2 * loop.interval_seconds,
    )
    print(f"\n{len(report.alerts)} alert transitions -> {len(reports)} incident(s)\n")
    markdown = "".join(r.to_markdown() + "\n" for r in reports)
    sys.stdout.write(markdown)

    # The acceptance check: some incident must tie the fired uplink alert to
    # a shedding decision that actually acted (capped a camera) in-window.
    trace = control_trace_records(report)
    explained = None
    for incident_report in reports:
        if not any(a.rule == uplink_rule.name for a in incident_report.incident.alerts):
            continue
        acting = [
            d for d in incident_report.decisions
            if d.get("actions") and d.get("candidates")
        ]
        # Prefer a tighten (a camera being capped) over a relax in the window.
        for decision in acting:
            if decision.get("kind") == "tighten":
                explained = decision
                break
        if explained is None and acting:
            explained = acting[0]
        if explained:
            break
    if explained is None:
        sys.exit(
            "incident demo failed: no incident correlates the uplink alert "
            "with an acting shedding decision"
        )

    seq = explained["action_seqs"][0]
    provenance = explain_action(trace, seq)
    print(f"replaying action {seq} back through the trace:")
    print(f"  entry:  {report.control_log[seq]}")
    print(
        f"  decided by {provenance['controller']}/{provenance['kind']} on "
        f"{provenance['node']} at t={provenance['t']:g}"
    )
    print(
        "  inputs: "
        + ", ".join(f"{k}={v:.4g}" for k, v in sorted(provenance["inputs"].items()))
    )
    ranked = ", ".join(
        f"{c['id']}={c['score']:.4g}" + ("*" if c["chosen"] else "")
        for c in provenance["candidates"][:6]
    )
    print(f"  candidates: {ranked} (* = chosen)")

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / "control_trace.jsonl").write_text(trace_to_jsonl(trace), encoding="utf-8")
    report.alerts.write_jsonl(OUT_DIR / "alerts.jsonl")
    timeline.write_jsonl(OUT_DIR / "timeline.jsonl")
    (OUT_DIR / "incidents.json").write_text(
        json.dumps([r.to_dict() for r in reports], sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    (OUT_DIR / "incidents.md").write_text(markdown, encoding="utf-8")
    print(
        f"\nwrote control_trace.jsonl, alerts.jsonl, timeline.jsonl, "
        f"incidents.json, incidents.md to {OUT_DIR}/ "
        f"(inspect with: python tools/fleetctl.py --dir {OUT_DIR} summarize)"
    )


if __name__ == "__main__":
    main()
