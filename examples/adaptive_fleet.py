#!/usr/bin/env python3
"""Adaptive fleet: the control plane chasing a mid-run hotspot.

The sharded example (``sharded_fleet.py``) shows that *where* cameras are
placed decides how much a cluster sheds; this one shows what placement alone
cannot fix — load that **moves** mid-run.  A 4-node cluster hosts 16 "hot"
24 fps cameras at half duty (eight live in the first half of the run, eight
in the second) among steady low-rate fill cameras.  Placement policies cost
cameras by rate, resolution, and scenario but not by duty cycle, so every
static configuration parks whole temporal hotspots on a few nodes.

The run compares, on the same fleet and uplink budget:

1. **static best-effort** — load-aware LPT placement, statically sliced
   uplink, no control plane;
2. **adaptive** — the same starting placement plus ``repro.control``:
   a deterministic control loop migrates cameras off the sustained hotspot
   (explicit blackout cost, hysteresis against flapping), gently sheds the
   queue-wait tail via per-camera quotas, and re-weights a work-conserving
   shared uplink toward the nodes that are actually uploading.

Every control decision is printed from the decision log — the whole run is
deterministic, so these lines are bit-identical across invocations.

Run:  python examples/adaptive_fleet.py
Environment overrides (used by the CI smoke step):
    ADAPTIVE_FLEET_HOT       hot half-duty cameras   (default 16)
    ADAPTIVE_FLEET_FILL      steady fill cameras     (default 48)
    ADAPTIVE_FLEET_DURATION  seconds per camera      (default 3.0)
"""

from __future__ import annotations

import os

from repro.control import (
    AdaptiveSheddingController,
    ControlLoop,
    MigrationConfig,
    MigrationController,
    MigrationCostModel,
    SheddingConfig,
    UplinkShareController,
)
from repro.fleet import (
    CameraSpec,
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
)

NUM_HOT = int(os.environ.get("ADAPTIVE_FLEET_HOT", "16"))
NUM_FILL = int(os.environ.get("ADAPTIVE_FLEET_FILL", "48"))
DURATION_SECONDS = float(os.environ.get("ADAPTIVE_FLEET_DURATION", "3.0"))
NUM_NODES = 4
TOTAL_UPLINK_BPS = 400_000.0

NODE_CONFIG = FleetConfig(
    num_workers=2,
    queue_capacity=8,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=40.0,
    resolution_scaled_service=True,
)


def make_fleet() -> list[CameraSpec]:
    """Hot half-duty cameras plus steady fill, ids arranged to defeat placement."""
    half = DURATION_SECONDS / 2.0
    cameras: list[CameraSpec] = []
    for i in range(NUM_HOT):
        late = i % 4 >= 2
        cameras.append(
            CameraSpec(
                camera_id=f"hot{i:02d}",
                width=64,
                height=48,
                frame_rate=24.0,
                num_frames=max(1, int(24.0 * half)),
                scenario="busy_intersection",
                seed=100 + i,
                start_time=half if late else 0.0,
            )
        )
    scenarios = ("quiet_residential", "urban_day", "retail_entrance", "night_watch")
    for i in range(NUM_FILL):
        rate = 4.0 if i % 2 == 0 else 2.0
        cameras.append(
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=80,
                height=48,
                frame_rate=rate,
                num_frames=max(1, int(rate * DURATION_SECONDS)),
                scenario=scenarios[i % 4],
                seed=i,
            )
        )
    return cameras


def build_control_loop() -> ControlLoop:
    """Shedding + uplink re-weighting + migration, composed in one loop."""
    return ControlLoop(
        [
            AdaptiveSheddingController(
                SheddingConfig(
                    high_watermark_seconds=0.6,
                    low_watermark_seconds=0.2,
                    cameras_per_step=1,
                    quota_ladder=(2,),
                )
            ),
            UplinkShareController(),
            MigrationController(
                MigrationConfig(
                    imbalance_threshold=1.10,
                    sustain_ticks=1,
                    cooldown_ticks=1,
                    camera_cooldown_ticks=12,
                    payback_factor=1.2,
                    cost_model=MigrationCostModel(
                        blackout_seconds=0.10, cold_start_seconds=0.15
                    ),
                )
            ),
        ],
        interval_seconds=0.25,
    )


def main() -> None:
    fleet = make_fleet()
    print(
        f"fleet of {len(fleet)} cameras on {NUM_NODES} nodes: {NUM_HOT} hot half-duty "
        f"24fps cameras + {NUM_FILL} steady fill, {DURATION_SECONDS:g}s per camera"
    )

    static_config = ShardingConfig(
        num_nodes=NUM_NODES,
        placement="load_aware",
        total_uplink_bps=TOTAL_UPLINK_BPS,
        uplink_allocation="equal",
        node_config=NODE_CONFIG,
    )
    static = ShardedFleetRuntime(fleet, config=static_config).run()
    print("\n--- static: load_aware placement, static uplink slices ---")
    print(static.summary())

    adaptive_config = ShardingConfig(
        num_nodes=NUM_NODES,
        placement="load_aware",
        total_uplink_bps=TOTAL_UPLINK_BPS,
        uplink_allocation="equal",
        uplink_sharing="work_conserving",
        node_config=NODE_CONFIG,
    )
    adaptive = ShardedFleetRuntime(
        fleet, config=adaptive_config, control_loop=build_control_loop()
    ).run()
    print("\n--- adaptive: same placement + repro.control ---")
    print(adaptive.summary())

    print("\ncontrol decisions:")
    for line in adaptive.control_log or ["  (control loop saw no reason to act)"]:
        print(f"  {line}")

    print(
        f"\ndrop rate {static.drop_rate:.1%} -> {adaptive.drop_rate:.1%} | "
        f"worst-node wait p99 {static.worst_node_queue_wait_p99 * 1e3:.0f} ms -> "
        f"{adaptive.worst_node_queue_wait_p99 * 1e3:.0f} ms | "
        f"reclaimed uplink {adaptive.reclaimed_uplink_bytes / 1024:.1f} KiB"
    )


if __name__ == "__main__":
    main()
