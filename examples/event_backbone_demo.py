#!/usr/bin/env python3
"""Event backbone demo: detector events ride the uplink to the datacenter.

A 2-node work-conserving cluster hosts dense ``busy_intersection`` hot
cameras among steady fill cameras.  Every event a detector closes becomes
a first-class :class:`~repro.core.events.EventRecord` with a global
``(camera, epoch, id)`` key, and an
:class:`~repro.events.EventDeliveryPlane` carries the records end to end:

* each node's bounded **outbox** schedules retries with exponential
  backoff against a seeded lossy **broker** (payload loss plus ack loss —
  the outcome that manufactures duplicate deliveries);
* every publish attempt's bytes ride the cluster's shared work-conserving
  uplink, contending with frame uploads — no free side channel;
* the **datacenter ingest** dedupes on event key (idempotence end to end)
  behind a serial consumer whose queueing lag lands in delivery latency;
* a :func:`~repro.obs.alerts.delivery_burn_rule` over the metrics
  timeline pages when published records miss the ack-latency SLO faster
  than the error budget allows.

The run self-checks the delivery plane's accounting invariants (every
published record resolves to exactly one final state; the datacenter
never ingests a key twice; the loss model really retried) and exits
non-zero on violation.  Everything is simulated-clock deterministic: two
runs write bit-identical ``delivery_log.jsonl`` and
``delivery_report.json`` (the CI smoke step asserts this with a byte
compare).

Run:  python examples/event_backbone_demo.py
Environment overrides (used by the CI smoke step):
    EVENT_DEMO_HOT       hot high-event cameras  (default 4)
    EVENT_DEMO_FILL      steady fill cameras     (default 6)
    EVENT_DEMO_DURATION  seconds per camera      (default 3.0)
    EVENT_DEMO_OUT       output directory        (default ./event_out)
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.events import (
    BrokerConfig,
    DeliveryConfig,
    EventDeliveryPlane,
    OutboxConfig,
)
from repro.fleet import (
    CameraSpec,
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
)
from repro.obs import MetricsTimeline, delivery_burn_rule
from repro.obs.slo import DeliverySLOConfig

NUM_HOT = int(os.environ.get("EVENT_DEMO_HOT", "4"))
NUM_FILL = int(os.environ.get("EVENT_DEMO_FILL", "6"))
DURATION_SECONDS = float(os.environ.get("EVENT_DEMO_DURATION", "3.0"))
OUT_DIR = Path(os.environ.get("EVENT_DEMO_OUT", "event_out"))
NUM_NODES = 2
TOTAL_UPLINK_BPS = 300_000.0

NODE_CONFIG = FleetConfig(
    num_workers=2,
    queue_capacity=8,
    drop_policy=DropPolicy.DROP_OLDEST,
    service_time_scale=0.05,
)

# A lossy leg to the datacenter: 15% payload loss plus 5% ack loss, so
# the demo exercises retries, duplicates, and the dedupe that absorbs
# them even on a short run.
DELIVERY = DeliveryConfig(
    broker=BrokerConfig(loss_rate=0.15, ack_loss_rate=0.05, seed=17),
    outbox=OutboxConfig(max_queue=256, max_retries=4),
    consumer_rate_eps=50.0,
    slo=DeliverySLOConfig(ack_latency_seconds=0.25, objective=0.9),
)


def make_fleet() -> list[CameraSpec]:
    """Dense-event hot cameras plus steady fill."""
    cameras: list[CameraSpec] = []
    for i in range(NUM_HOT):
        cameras.append(
            CameraSpec(
                camera_id=f"hot{i:02d}",
                width=48,
                height=32,
                frame_rate=16.0,
                num_frames=max(1, int(16.0 * DURATION_SECONDS)),
                scenario="busy_intersection",
                seed=100 + i,
                event_rate_scale=3.0,
            )
        )
    scenarios = ("urban_day", "retail_entrance", "night_watch")
    for i in range(NUM_FILL):
        rate = 4.0 if i % 2 == 0 else 2.0
        cameras.append(
            CameraSpec(
                camera_id=f"cam{i:03d}",
                width=64,
                height=48,
                frame_rate=rate,
                num_frames=max(1, int(rate * DURATION_SECONDS)),
                scenario=scenarios[i % 3],
                seed=i,
            )
        )
    return cameras


def main() -> None:
    fleet = make_fleet()
    plane = EventDeliveryPlane(DELIVERY)
    timeline = MetricsTimeline()
    burn_rule = delivery_burn_rule(DELIVERY.slo, window_seconds=2.0)
    runtime = ShardedFleetRuntime(
        fleet,
        config=ShardingConfig(
            num_nodes=NUM_NODES,
            placement="load_aware",
            uplink_sharing="work_conserving",
            total_uplink_bps=TOTAL_UPLINK_BPS,
            node_config=NODE_CONFIG,
        ),
        timeline=timeline,
        alert_rules=[burn_rule],
        event_plane=plane,
    )
    print(
        f"event backbone demo: {len(fleet)} cameras on {NUM_NODES} nodes, "
        f"{DELIVERY.broker.loss_rate:.0%} broker loss + "
        f"{DELIVERY.broker.ack_loss_rate:.0%} ack loss, "
        f"ack SLO {DELIVERY.slo.ack_latency_seconds:g}s"
    )
    report = runtime.run()
    print()
    print(report.summary())

    delivery = report.delivery
    # Self-checks: the delivery plane's accounting must close exactly.
    if delivery is None or delivery.published == 0:
        sys.exit("event demo failed: no event records were published")
    if delivery.published != (
        delivery.acked + delivery.delivered_unacked + delivery.dead_letter
    ):
        sys.exit("event demo failed: published records did not all resolve")
    if plane.ingest.unique_ingests != delivery.delivered:
        sys.exit("event demo failed: datacenter ingested a key twice")
    if plane.ingest.duplicates != delivery.duped:
        sys.exit("event demo failed: duplicate accounting does not close")
    if delivery.retried == 0:
        sys.exit("event demo failed: the lossy broker never forced a retry")

    print(
        f"\ndelivered {delivery.delivered}/{delivery.published} records "
        f"({delivery.retried} retries, {delivery.duped} duplicates "
        f"suppressed, {delivery.dead_letter} dead letters, "
        f"{delivery.dropped_overflow} overflow drops)"
    )
    print(
        f"delivery latency p50={delivery.latency_p50 * 1e3:.1f}ms "
        f"p99={delivery.latency_p99 * 1e3:.1f}ms, "
        f"max consumer lag {delivery.max_consumer_lag * 1e3:.1f}ms, "
        f"{delivery.ack_violations} ack-SLO violations"
    )
    if report.alerts is not None:
        fired = [e for e in report.alerts.events if e.state == "firing"]
        print(
            f"{len(report.alerts.events)} alert transitions "
            f"({len(fired)} fired) from rule {burn_rule.name!r}"
        )

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / "delivery_log.jsonl").write_text(
        plane.delivery_log_jsonl(), encoding="utf-8"
    )
    payload = {
        "cluster": delivery.to_dict(),
        "nodes": {
            node_id: plane.node_reports[node_id].to_dict()
            for node_id in plane.node_ids()
        },
    }
    (OUT_DIR / "delivery_report.json").write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"\nwrote delivery_log.jsonl, delivery_report.json to {OUT_DIR}/ "
        f"(inspect with: python tools/fleetctl.py --dir {OUT_DIR} events)"
    )


if __name__ == "__main__":
    main()
