#!/usr/bin/env python3
"""Accuracy fleet: trained per-camera microclassifiers under load shedding.

Every other fleet example reports *queue* metrics — drop rates, waits,
fairness.  This one reports what those drops actually cost: each camera
trains a real microclassifier on its own labelled synthetic clip (the
per-camera seed ladder of ``repro.fleet.accuracy``), the live run is scored
frame-for-frame against ground truth, and the paper's event F1 (Section
4.2) is printed per camera and for the whole fleet.

Three regimes on the same cameras and trained models:

1. **offline** — every frame scored, no fleet: the accuracy ceiling;
2. **provisioned** — a fleet with capacity to keep up (reproduces the
   offline F1 exactly: the streaming fleet plumbing is accuracy-neutral);
3. **overloaded** — the bounded queues shed load and the F1-vs-drop-rate
   cost becomes visible.

Run:  python examples/accuracy_fleet.py
Environment overrides (used by the CI smoke step):
    ACCURACY_FLEET_CAMERAS       cameras          (default 8)
    ACCURACY_FLEET_DURATION      seconds/camera   (default 3.0)
    ACCURACY_FLEET_TRAIN_FRAMES  training frames  (default 96)
"""

from __future__ import annotations

import os

from repro.fleet import (
    AccuracyConfig,
    CameraSpec,
    DropPolicy,
    FleetConfig,
    FleetRuntime,
    TrainedMicroClassifiers,
    evaluate_offline,
)

NUM_CAMERAS = int(os.environ.get("ACCURACY_FLEET_CAMERAS", "8"))
DURATION_SECONDS = float(os.environ.get("ACCURACY_FLEET_DURATION", "3.0"))
TRAIN_FRAMES = int(os.environ.get("ACCURACY_FLEET_TRAIN_FRAMES", "96"))

SCENARIOS = ("retail_entrance", "busy_intersection", "urban_day", "quiet_residential")

ACCURACY = AccuracyConfig(train_frames=TRAIN_FRAMES, epochs=3.0)


def make_fleet() -> list[CameraSpec]:
    """An event-dense fleet over the four pedestrian-bearing scenarios."""
    rates = (8.0, 10.0, 12.0)
    return [
        CameraSpec(
            camera_id=f"cam{i:03d}",
            width=48,
            height=32,
            frame_rate=rates[i % 3],
            num_frames=max(1, int(rates[i % 3] * DURATION_SECONDS)),
            scenario=SCENARIOS[i % 4],
            seed=500 + i,
            event_rate_scale=2.0,
        )
        for i in range(NUM_CAMERAS)
    ]


def print_accuracy_table(accuracy) -> None:
    """Per-camera F1/precision/recall, worst camera last."""
    print(f"  {'camera':<8} {'scenario':<18} {'F1':>6} {'prec':>6} {'recall':>6} "
          f"{'events':>6} {'shed':>6}")
    for camera in sorted(accuracy.cameras.values(), key=lambda c: -c.f1):
        print(
            f"  {camera.camera_id:<8} {camera.scenario:<18} {camera.f1:>6.3f} "
            f"{camera.precision:>6.3f} {camera.recall:>6.3f} {camera.num_events:>6d} "
            f"{camera.drop_rate:>6.1%}"
        )


def main() -> None:
    fleet = make_fleet()
    models = TrainedMicroClassifiers(ACCURACY)
    print(
        f"training {len(fleet)} per-camera microclassifiers "
        f"({ACCURACY.architecture}, {ACCURACY.train_frames} labelled frames each, "
        f"task={ACCURACY.task}) ..."
    )

    offline = evaluate_offline(fleet, models)
    print(f"\n--- offline (no fleet, every frame scored) ---\n{offline.summary()}")
    print_accuracy_table(offline)

    provisioned = FleetRuntime(
        fleet,
        pipeline_factory=models.pipeline_factory(),
        config=FleetConfig(
            num_workers=4,
            queue_capacity=4,
            service_time_scale=0.004,
            accuracy_task=ACCURACY.task,
        ),
    ).run()
    print("\n--- provisioned fleet (keeps up) ---")
    print(provisioned.summary())

    overloaded = FleetRuntime(
        fleet,
        pipeline_factory=models.pipeline_factory(),
        config=FleetConfig(
            num_workers=2,
            queue_capacity=2,
            drop_policy=DropPolicy.DROP_OLDEST,
            service_time_scale=0.3,
            accuracy_task=ACCURACY.task,
        ),
    ).run()
    print("\n--- overloaded fleet (bounded queues shed) ---")
    print(overloaded.summary())
    print_accuracy_table(overloaded.accuracy)

    print(
        f"\nmacro-F1: offline {offline.macro_f1:.3f} -> provisioned "
        f"{provisioned.accuracy.macro_f1:.3f} -> overloaded "
        f"{overloaded.accuracy.macro_f1:.3f} "
        f"(drop rate {overloaded.drop_rate:.1%}) | "
        f"trained once, reused {models.cache_hits}x"
    )


if __name__ == "__main__":
    main()
