#!/usr/bin/env python3
"""Fleet simulation: 32 cameras, one constrained edge node.

The paper's premise is many cameras per edge node; this example runs a
32-camera synthetic fleet — six content scenarios, mixed resolutions and
frame rates — through the streaming fleet runtime in four regimes:

1. **overloaded, drop-oldest** — paper-calibrated service times; the node
   cannot keep up, bounded queues shed stale frames, and telemetry shows
   where the load went;
2. **overloaded + admission control** — a node-wide in-flight budget
   rejects excess frames at the door instead of queueing them to die;
3. **overloaded + per-camera quota** — the same budget with a per-camera
   cap, so no single camera can monopolize it and starve its neighbours
   (watch the fairness line and the ``fairness.starved_cameras`` gauge);
4. **provisioned** — a faster node scores every frame; drop rate is zero
   and the uplink becomes the binding constraint.

Every frame that is scored really runs the NumPy FilterForward pipeline —
only the clock is simulated — so matches, events, and uploaded bits are
true pipeline outputs.

Run:  python examples/fleet_simulation.py
Environment overrides (used by the CI smoke step):
    FLEET_SIM_CAMERAS   number of cameras  (default 32)
    FLEET_SIM_DURATION  seconds per camera (default 4.0)
    FLEET_SIM_PROM      when set, write each regime's telemetry registry
                        as Prometheus text exposition to this directory
"""

from __future__ import annotations

import os
from collections import Counter

from repro.fleet import DropPolicy, FleetConfig, FleetRuntime, generate_fleet

NUM_CAMERAS = int(os.environ.get("FLEET_SIM_CAMERAS", "32"))
DURATION_SECONDS = float(os.environ.get("FLEET_SIM_DURATION", "4.0"))
PROM_DIR = os.environ.get("FLEET_SIM_PROM")


def describe_fleet(fleet) -> None:
    scenarios = Counter(spec.scenario for spec in fleet)
    resolutions = Counter(f"{w}x{h}" for (w, h) in (spec.resolution for spec in fleet))
    rates = Counter(f"{spec.frame_rate:g}fps" for spec in fleet)
    print(f"fleet of {len(fleet)} cameras over {DURATION_SECONDS:.0f}s")
    print(f"  scenarios:   {dict(sorted(scenarios.items()))}")
    print(f"  resolutions: {dict(sorted(resolutions.items()))}")
    print(f"  frame rates: {dict(sorted(rates.items()))}")


def run_regime(title: str, fleet, config: FleetConfig) -> None:
    print(f"\n--- {title} ---")
    runtime = FleetRuntime(fleet, config=config)
    report = runtime.run()
    print(report.summary())
    if PROM_DIR:
        from pathlib import Path

        slug = f"regime{title.split(')', 1)[0].strip()}"
        out = Path(PROM_DIR)
        out.mkdir(parents=True, exist_ok=True)
        target = out / f"{slug}.prom"
        target.write_text(
            runtime.telemetry.to_prometheus(labels={"regime": slug}), encoding="utf-8"
        )
        print(f"wrote {target}")
    waits = report.telemetry.get("latency.queue_wait_seconds")
    if isinstance(waits, dict) and waits["count"]:
        print(
            f"queue wait: mean {waits['mean'] * 1e3:.0f} ms, "
            f"p99 {waits['p99'] * 1e3:.0f} ms over {waits['count']:g} dispatches"
        )
    busiest = max(report.cameras.values(), key=lambda c: c.frames_generated)
    quietest = min(report.cameras.values(), key=lambda c: c.frames_generated)
    for label, cam in (("busiest", busiest), ("quietest", quietest)):
        print(
            f"{label}: {cam.camera_id} ({cam.scenario}, {cam.frame_rate:g}fps) "
            f"scored {cam.frames_scored}/{cam.frames_generated}, "
            f"dropped {cam.frames_dropped}, events {cam.events}"
        )


def main() -> None:
    fleet = generate_fleet(NUM_CAMERAS, seed=0, duration_seconds=DURATION_SECONDS)
    describe_fleet(fleet)

    run_regime(
        "1) overloaded node, drop-oldest queues (paper-calibrated service times)",
        fleet,
        FleetConfig(
            num_workers=4,
            queue_capacity=8,
            drop_policy=DropPolicy.DROP_OLDEST,
            service_time_scale=1.0,
            uplink_capacity_bps=500_000.0,
        ),
    )

    run_regime(
        "2) overloaded node + admission control (max 16 frames in flight)",
        fleet,
        FleetConfig(
            num_workers=4,
            queue_capacity=8,
            drop_policy=DropPolicy.DROP_NEWEST,
            max_in_flight=16,
            service_time_scale=1.0,
            uplink_capacity_bps=500_000.0,
        ),
    )

    run_regime(
        "3) overloaded node + per-camera quota (1 in flight each): less starvation",
        fleet,
        FleetConfig(
            num_workers=4,
            queue_capacity=8,
            drop_policy=DropPolicy.DROP_NEWEST,
            max_in_flight=16,
            per_camera_quota=1,
            service_time_scale=1.0,
            uplink_capacity_bps=500_000.0,
        ),
    )

    run_regime(
        "4) provisioned node (100x faster): zero shedding, uplink-bound",
        fleet,
        FleetConfig(
            num_workers=4,
            queue_capacity=8,
            drop_policy=DropPolicy.DROP_OLDEST,
            service_time_scale=0.01,
            uplink_capacity_bps=500_000.0,
        ),
    )


if __name__ == "__main__":
    main()
