#!/usr/bin/env python3
"""Bandwidth planning: how many cameras fit on one constrained uplink?

The paper's motivating deployment mounts eight 4K cameras on a single
35 Mb/s uplink ($400/month), which is why per-camera bandwidth must be cut
by an order of magnitude.  This example uses the codec simulator and the
Figure 4 machinery to answer the planning question an operator actually has:

    For a target event-detection accuracy, how much uplink does each camera
    need under (a) "compress everything" and (b) FilterForward — and how many
    cameras can therefore share one uplink?

Run:  python examples/bandwidth_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.core import TrainingConfig
from repro.experiments.common import ExperimentContext
from repro.experiments.figure4 import (
    default_bitrate_sweep,
    filterforward_upload_bitrate,
    run_figure4,
    summarize_figure4,
)
from repro.metrics import bandwidth_reduction
from repro.video import make_roadway_like

UPLINK_MBPS = 35.0          # the paper's shared uplink
NUM_FRAMES = 480
WIDTH, HEIGHT = 160, 68
TARGET_ACCURACY_FRACTION = 0.9  # "within 10% of the best achievable F1"


def main() -> None:
    print("Setting up the Roadway-like 'people with red' workload ...")
    dataset = make_roadway_like(num_frames=NUM_FRAMES, width=WIDTH, height=HEIGHT, seed=23)
    context = ExperimentContext(dataset, alpha=0.25, seed=0)

    print("Training the localized microclassifier on the edge task ...")
    trained = context.train_microclassifier(
        "localized", training=TrainingConfig(epochs=6, batch_size=16, learning_rate=2e-3, seed=0)
    )
    print(f"  event F1 on held-out video: {trained.event_f1:.3f}")

    print("Sweeping 'compress everything' bitrates and evaluating FilterForward ...")
    result = run_figure4(
        context,
        architecture="localized",
        compress_bitrates=default_bitrate_sweep(context, num_points=6),
        ff_upload_bitrate=filterforward_upload_bitrate(context, paper_bitrate=500_000),
        trained=trained,
    )
    summary = summarize_figure4(result)

    ff = result.filterforward[0]
    best_f1 = max(p.event_f1 for p in result.compress_everything + result.filterforward)
    target_f1 = TARGET_ACCURACY_FRACTION * best_f1

    acceptable = [p for p in result.compress_everything if p.event_f1 >= target_f1]
    if acceptable:
        compress_choice = min(acceptable, key=lambda p: p.paper_equivalent_mbps)
    else:
        compress_choice = max(result.compress_everything, key=lambda p: p.event_f1)

    print("\n--- Per-camera uplink requirement (paper-equivalent Mb/s) ---")
    print(f"  target event F1             : {target_f1:.3f}")
    print(
        f"  compress everything         : {compress_choice.paper_equivalent_mbps:.2f} Mb/s "
        f"(F1 {compress_choice.event_f1:.3f})"
    )
    print(
        f"  FilterForward               : {ff.paper_equivalent_mbps:.2f} Mb/s "
        f"(F1 {ff.event_f1:.3f})"
    )
    reduction = bandwidth_reduction(
        compress_choice.paper_equivalent_mbps, max(ff.paper_equivalent_mbps, 1e-6)
    )
    print(f"  bandwidth reduction         : {reduction:.1f}x  (paper reports 6.3x-13x)")

    cameras_compress = int(UPLINK_MBPS // max(compress_choice.paper_equivalent_mbps, 1e-6))
    cameras_ff = int(UPLINK_MBPS // max(ff.paper_equivalent_mbps, 1e-6))
    print(f"\n--- Cameras per {UPLINK_MBPS:.0f} Mb/s uplink ---")
    print(f"  compress everything         : {max(cameras_compress, 0)} cameras")
    print(f"  FilterForward               : {max(cameras_ff, 0)} cameras")

    print("\nFull sweep (paper-equivalent Mb/s -> event F1):")
    for point in sorted(result.compress_everything, key=lambda p: p.paper_equivalent_mbps):
        print(f"  compress {point.paper_equivalent_mbps:6.2f} Mb/s -> F1 {point.event_f1:.3f}")
    print(f"  filterforward {ff.paper_equivalent_mbps:6.2f} Mb/s -> F1 {ff.event_f1:.3f}")
    print(f"\nheadline summary: {summary}")


if __name__ == "__main__":
    main()
