#!/usr/bin/env python3
"""Quickstart: filter a synthetic surveillance stream with one microclassifier.

This walks the core FilterForward loop end to end in a few minutes on a CPU:

1. generate a small annotated Roadway-like dataset (the *People with red*
   task from the paper),
2. build the shared MobileNet-style base DNN and a feature extractor,
3. train a localized binary classifier microclassifier offline on the
   training video,
4. deploy it in a :class:`FilterForwardPipeline` and filter the test video,
5. report event-level accuracy and bandwidth use against ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    FilterForwardPipeline,
    MicroClassifierConfig,
    TrainingConfig,
    build_microclassifier,
    train_classifier,
)
from repro.features import FeatureExtractor, build_mobilenet_like
from repro.metrics import bits_to_mbps, event_f1_score
from repro.video import make_roadway_like

# Small but representative settings; increase num_frames / resolution for
# numbers closer to the EXPERIMENTS.md presets.
NUM_FRAMES = 300
WIDTH, HEIGHT = 128, 54
TAP_LAYER = "conv2_2/sep"  # chosen by the paper's layer-size heuristic at this scale


def main() -> None:
    print("1) Generating the Roadway-like dataset (People with red task) ...")
    dataset = make_roadway_like(num_frames=NUM_FRAMES, width=WIDTH, height=HEIGHT, seed=23)
    print(
        f"   train: {len(dataset.train_stream)} frames, "
        f"{len(dataset.train_labels.events())} events; "
        f"test: {len(dataset.test_stream)} frames, "
        f"{len(dataset.test_labels.events())} events"
    )

    print("2) Building the shared base DNN and feature extractor ...")
    base_dnn = build_mobilenet_like((HEIGHT, WIDTH, 3), alpha=0.25, rng=np.random.default_rng(0))
    extractor = FeatureExtractor(base_dnn, [TAP_LAYER], cache_size=8)
    print(f"   base DNN: {base_dnn.num_parameters():,} weights, "
          f"{base_dnn.multiply_adds() / 1e6:.1f}M multiply-adds per frame")

    print("3) Training the localized binary classifier microclassifier ...")
    config = MicroClassifierConfig(
        name="people_with_red",
        input_layer=TAP_LAYER,
        threshold=0.5,
        upload_bitrate=8_000,  # scaled-down equivalent of the paper's 500 kb/s
    )
    mc = build_microclassifier("localized", config, extractor.layer_shape(TAP_LAYER))
    train_maps = np.stack(
        [extractor.extract_pixels(f.pixels)[TAP_LAYER] for f in dataset.train_stream]
    )
    extractor.reset_cache()
    history = train_classifier(
        mc,
        train_maps,
        dataset.train_labels.labels,
        TrainingConfig(epochs=6, batch_size=16, learning_rate=2e-3, seed=0),
    )
    print(f"   trained for {history.steps} steps; final loss {history.final_loss:.3f}")
    print(f"   marginal cost: {mc.multiply_adds() / 1e6:.2f}M multiply-adds per frame "
          f"({base_dnn.multiply_adds() / mc.multiply_adds():.0f}x cheaper than the base DNN)")

    print("4) Filtering the test stream on the (simulated) edge node ...")
    pipeline = FilterForwardPipeline(extractor, [mc])
    result = pipeline.process_stream(dataset.test_stream)
    mc_result = result.per_mc["people_with_red"]
    print(
        f"   matched {mc_result.num_matched_frames}/{result.num_frames} frames "
        f"in {len(mc_result.events)} events"
    )

    print("5) Scoring against ground truth ...")
    breakdown = event_f1_score(
        dataset.test_labels.labels, mc_result.smoothed, return_breakdown=True
    )
    print(
        f"   event F1 {breakdown.f1:.3f} "
        f"(precision {breakdown.precision:.3f}, event recall {breakdown.recall:.3f})"
    )
    raw_mbps = bits_to_mbps(dataset.test_stream.raw_bits_per_second())
    print(
        f"   average upload bandwidth {bits_to_mbps(result.average_uplink_bandwidth):.4f} Mb/s "
        f"(raw stream would be {raw_mbps:.1f} Mb/s; "
        f"upload fraction {result.upload_fraction:.2f})"
    )


if __name__ == "__main__":
    main()
