#!/usr/bin/env python3
"""Sharded fleet: 64 cameras across 4 edge nodes behind one datacenter uplink.

The single-node example (``fleet_simulation.py``) shows one constrained box
shedding load; this one shows the cluster-level question — which cameras
should each node host?  The same skewed fleet (frame rates 2/4/24 fps) runs
under all three placement policies:

1. **round_robin** — cameras dealt in index order; load lands unevenly;
2. **load_aware**  — LPT bin-packing on the analytic cost estimate
   (`repro.perf.cost_model` ops/s x frame rate x scenario event density);
3. **resolution_aware** — same-resolution cameras co-located so nearly
   every node holds a single shared base DNN.

All three runs are deterministic and use an identically-sized shared
datacenter uplink (a fresh SharedUplink per run, same ShardingConfig), so
the cluster reports are directly comparable.

Run:  python examples/sharded_fleet.py
Environment overrides (used by the CI smoke step):
    SHARDED_FLEET_CAMERAS   number of cameras  (default 64)
    SHARDED_FLEET_DURATION  seconds per camera (default 3.0)
"""

from __future__ import annotations

import os

from repro.fleet import (
    DropPolicy,
    FleetConfig,
    ShardedFleetRuntime,
    ShardingConfig,
    generate_fleet,
)

NUM_CAMERAS = int(os.environ.get("SHARDED_FLEET_CAMERAS", "64"))
DURATION_SECONDS = float(os.environ.get("SHARDED_FLEET_DURATION", "3.0"))
NUM_NODES = 4


def main() -> None:
    fleet = generate_fleet(
        NUM_CAMERAS,
        seed=7,
        duration_seconds=DURATION_SECONDS,
        resolutions=((64, 48), (80, 48)),
        frame_rates=(2.0, 4.0, 24.0),
    )
    print(
        f"fleet of {len(fleet)} cameras on {NUM_NODES} nodes, "
        f"{DURATION_SECONDS:g}s per camera, skewed frame rates"
    )
    node_config = FleetConfig(
        num_workers=2,
        queue_capacity=8,
        drop_policy=DropPolicy.DROP_OLDEST,
        service_time_scale=0.029,
    )
    for policy in ("round_robin", "load_aware", "resolution_aware"):
        config = ShardingConfig(
            num_nodes=NUM_NODES,
            placement=policy,
            total_uplink_bps=1_000_000.0,
            uplink_allocation="by_cost",
            node_config=node_config,
        )
        report = ShardedFleetRuntime(fleet, config=config).run()
        print(f"\n--- placement: {policy} ---")
        print(report.summary())


if __name__ == "__main__":
    main()
